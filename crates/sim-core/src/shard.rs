//! Set-sharded views of a [`DecodedTrace`] for intra-trace parallel replay.
//!
//! STEM's premise — LLC sets are (mostly) independent capacity domains — is
//! also a parallelization theorem: for a scheme whose entire mutable state is
//! per-set, the outcome of access `i` depends only on the earlier accesses
//! that map to the *same set*. Partitioning the sets into disjoint groups and
//! replaying each group's accesses (in original order) against its own cache
//! instance therefore reproduces the serial per-access outcomes exactly, and
//! the per-shard [`CacheStats`](crate::CacheStats) sum to the serial totals.
//!
//! The partition used here folds sets into **pair domains**: with `sets = 2h`
//! the domain of set `s` is `s & (h - 1)`, so each domain is the pair
//! `{d, d + h}` — exactly the partner pair `(s, s ^ h)` of the static
//! spill-based scheme. Purely per-set schemes are indifferent to how sets are
//! grouped, so folding costs them nothing; keeping partners co-resident makes
//! the same partition valid for pair-coupled schemes too. One plan serves
//! every scheme that reports [`supports_set_sharding`].
//!
//! Schemes with *cross-set* state (a global PSEL, election counters, a shared
//! victim buffer or data store, a global RNG consumed on some accesses) are
//! order-sensitive under this interleaving and must keep the serial path;
//! that boundary is declared per scheme via
//! [`CacheModel::supports_set_sharding`](crate::CacheModel::supports_set_sharding).
//!
//! Bucketing is a stable one-pass scatter: each shard's compacted
//! `DecodedTrace` preserves the source order of its accesses, and the
//! ascending original-index column ([`TraceShard::orig_indices`]) lets
//! consumers translate global positions — a warmup boundary, a profiling
//! period — back onto each shard via [`TraceShard::split_before`].
//!
//! [`supports_set_sharding`]: crate::CacheModel::supports_set_sharding

use std::ops::Range;

use crate::{CacheGeometry, DecodedTrace};

/// A [`DecodedTrace`] partitioned into disjoint set-domain shards.
///
/// # Examples
///
/// ```
/// use stem_sim_core::{Access, Address, CacheGeometry, DecodedTrace, ShardedTrace, Trace};
///
/// let geom = CacheGeometry::new(8, 4, 64).unwrap();
/// let trace: Trace = (0..100u64).map(|i| Access::read(Address::new(i * 64))).collect();
/// let decoded = DecodedTrace::decode(&trace, geom);
/// let plan = ShardedTrace::partition(&decoded, 4);
/// assert_eq!(plan.shard_count(), 4);
/// let total: usize = plan.shards().iter().map(|s| s.len()).sum();
/// assert_eq!(total, decoded.len());
/// ```
#[derive(Debug, Clone)]
pub struct ShardedTrace {
    shards: Vec<TraceShard>,
    source_len: usize,
    domains: usize,
    geom: CacheGeometry,
}

/// One shard of a [`ShardedTrace`]: a compacted `DecodedTrace` holding (in
/// source order) exactly the accesses whose pair domain falls in this shard's
/// contiguous domain range, plus the ascending original indices of those
/// accesses in the source trace.
#[derive(Debug, Clone)]
pub struct TraceShard {
    trace: DecodedTrace,
    orig: Vec<u32>,
    domains: Range<usize>,
}

/// The pair-domain count of `geom`: `max(sets / 2, 1)`.
#[inline]
fn domain_count(geom: CacheGeometry) -> usize {
    (geom.sets() / 2).max(1)
}

/// The pair domain of `set`: `set & (sets/2 - 1)` (set counts are powers of
/// two), folding partner pairs `(s, s ^ sets/2)` onto one domain.
#[inline]
fn domain_of(set: u32, domains: usize) -> usize {
    (set as usize) & (domains - 1)
}

impl ShardedTrace {
    /// Partitions `trace` into `shards` contiguous pair-domain ranges with a
    /// stable one-pass bucketing of the access stream. `shards` is clamped to
    /// at least 1; asking for more shards than there are domains yields
    /// surplus shards with empty domain ranges (and therefore no accesses).
    ///
    /// # Panics
    ///
    /// Panics if `trace` has more than `u32::MAX` accesses (original indices
    /// are stored as `u32`; every trace in this workspace is far smaller).
    pub fn partition(trace: &DecodedTrace, shards: usize) -> Self {
        let n = trace.len();
        assert!(
            n as u64 <= u64::from(u32::MAX),
            "shard original indices are stored as u32"
        );
        let geom = trace.geometry();
        let domains = domain_count(geom);
        let shards = shards.max(1);

        // Contiguous domain ranges; domain d belongs to shard d*shards/domains
        // rounded per the standard balanced split below.
        let bounds: Vec<usize> = (0..=shards).map(|k| k * domains / shards).collect();
        let mut domain_to_shard = vec![0u32; domains];
        for k in 0..shards {
            for slot in &mut domain_to_shard[bounds[k]..bounds[k + 1]] {
                *slot = k as u32;
            }
        }

        // Size each shard exactly, then scatter in one stable pass.
        let mut counts = vec![0usize; shards];
        for &s in trace.set_indices() {
            counts[domain_to_shard[domain_of(s, domains)] as usize] += 1;
        }
        struct Builder {
            sets: Vec<u32>,
            lines: Vec<u64>,
            write_words: Vec<u64>,
            inst_gaps: Vec<u32>,
            orig: Vec<u32>,
        }
        let mut builders: Vec<Builder> = counts
            .iter()
            .map(|&c| Builder {
                sets: Vec::with_capacity(c),
                lines: Vec::with_capacity(c),
                write_words: vec![0u64; c.div_ceil(64)],
                inst_gaps: Vec::with_capacity(c),
                orig: Vec::with_capacity(c),
            })
            .collect();
        let sets = trace.set_indices();
        let lines = trace.line_addrs();
        let gaps = trace.inst_gaps();
        for i in 0..n {
            let k = domain_to_shard[domain_of(sets[i], domains)] as usize;
            let b = &mut builders[k];
            let local = b.sets.len();
            if trace.is_write(i) {
                b.write_words[local >> 6] |= 1u64 << (local & 63);
            }
            b.sets.push(sets[i]);
            b.lines.push(lines[i]);
            b.inst_gaps.push(gaps[i]);
            b.orig.push(i as u32);
        }
        let shards_vec = builders
            .into_iter()
            .enumerate()
            .map(|(k, b)| TraceShard {
                trace: DecodedTrace::from_parts(geom, b.sets, b.lines, b.write_words, b.inst_gaps),
                orig: b.orig,
                domains: bounds[k]..bounds[k + 1],
            })
            .collect();
        ShardedTrace {
            shards: shards_vec,
            source_len: n,
            domains,
            geom,
        }
    }

    /// The shards, in domain order. Every source access appears in exactly
    /// one shard; concatenating the shards' [`orig_indices`]
    /// (each ascending) and sorting yields `0..source_len`.
    ///
    /// [`orig_indices`]: TraceShard::orig_indices
    #[inline]
    pub fn shards(&self) -> &[TraceShard] {
        &self.shards
    }

    /// Number of shards (as clamped at partition time).
    #[inline]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Length of the source trace this plan was built from.
    #[inline]
    pub fn source_len(&self) -> usize {
        self.source_len
    }

    /// Number of pair domains (`max(sets / 2, 1)`); the effective
    /// parallelism ceiling of the partition.
    #[inline]
    pub fn domain_count(&self) -> usize {
        self.domains
    }

    /// The geometry of the source trace (shared by every shard).
    #[inline]
    pub fn geometry(&self) -> CacheGeometry {
        self.geom
    }
}

impl TraceShard {
    /// The compacted per-shard access stream (full source geometry; only the
    /// shard's sets ever appear, so untouched sets of a fresh cache instance
    /// stay cold and contribute nothing to the stats).
    #[inline]
    pub fn trace(&self) -> &DecodedTrace {
        &self.trace
    }

    /// Ascending original indices: `orig_indices()[j]` is the position in
    /// the source trace of this shard's access `j`.
    #[inline]
    pub fn orig_indices(&self) -> &[u32] {
        &self.orig
    }

    /// The contiguous pair-domain range this shard owns. Set `s` belongs to
    /// this shard iff `s & (sets/2 - 1)` falls in the range; empty for
    /// surplus shards when `shards > domains`.
    #[inline]
    pub fn domain_range(&self) -> Range<usize> {
        self.domains.clone()
    }

    /// Iterates over the set indices this shard owns (each domain `d`
    /// contributes `d` and its partner `d + sets/2` when `sets >= 2`).
    pub fn owned_sets(&self) -> impl Iterator<Item = usize> + '_ {
        let sets = self.trace.geometry().sets();
        let half = sets / 2;
        self.domains.clone().flat_map(move |d| {
            [d, d + half]
                .into_iter()
                .take(if half == 0 { 1 } else { 2 })
        })
    }

    /// Number of accesses in this shard.
    #[inline]
    pub fn len(&self) -> usize {
        self.trace.len()
    }

    /// Whether the shard holds no accesses.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.trace.is_empty()
    }

    /// How many of this shard's accesses have original index `< global_idx`:
    /// the local position where a global boundary (e.g. the warmup split)
    /// falls in this shard. Binary search over the ascending `orig` column.
    pub fn split_before(&self, global_idx: usize) -> usize {
        self.orig.partition_point(|&o| (o as usize) < global_idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Access, Address, SplitMix64, Trace};

    fn mixed_decoded(n: usize, sets: usize) -> DecodedTrace {
        let geom = CacheGeometry::new(sets, 4, 64).unwrap();
        let mut rng = SplitMix64::new(11);
        let mut t = Trace::with_capacity(n);
        for i in 0..n {
            let addr = Address::new(rng.next_u64() % (1 << 22));
            let a = if i % 3 == 0 {
                Access::write(addr)
            } else {
                Access::read(addr)
            };
            t.push(a.with_inst_gap((i % 7 + 1) as u32));
        }
        DecodedTrace::decode(&t, geom)
    }

    #[test]
    fn partition_covers_every_access_exactly_once() {
        let d = mixed_decoded(500, 64);
        for shards in [1, 2, 4, 7, 32] {
            let plan = ShardedTrace::partition(&d, shards);
            assert_eq!(plan.shard_count(), shards);
            assert_eq!(plan.source_len(), 500);
            let mut seen: Vec<u32> = plan
                .shards()
                .iter()
                .flat_map(|s| s.orig_indices().iter().copied())
                .collect();
            assert_eq!(seen.len(), 500);
            for s in plan.shards() {
                assert!(s.orig_indices().windows(2).all(|w| w[0] < w[1]));
            }
            seen.sort_unstable();
            assert!(seen.iter().enumerate().all(|(i, &o)| o as usize == i));
        }
    }

    #[test]
    fn shard_columns_match_source_including_write_flags() {
        // 200 accesses with writes at i % 3 == 0 exercises flags on both
        // sides of the 64-access write_words boundaries (63/64, 127/128).
        let d = mixed_decoded(200, 64);
        let plan = ShardedTrace::partition(&d, 4);
        for shard in plan.shards() {
            for (j, &o) in shard.orig_indices().iter().enumerate() {
                let o = o as usize;
                assert_eq!(shard.trace().set_indices()[j], d.set_indices()[o]);
                assert_eq!(shard.trace().line_addrs()[j], d.line_addrs()[o]);
                assert_eq!(shard.trace().inst_gaps()[j], d.inst_gaps()[o]);
                assert_eq!(shard.trace().is_write(j), d.is_write(o));
            }
        }
    }

    #[test]
    fn pair_domains_keep_partners_together() {
        let d = mixed_decoded(400, 64);
        let half = 32u32;
        for shards in [2, 3, 4, 7] {
            let plan = ShardedTrace::partition(&d, shards);
            assert_eq!(plan.domain_count(), 32);
            for shard in plan.shards() {
                for &s in shard.trace().set_indices() {
                    let partner = s ^ half;
                    let r = shard.domain_range();
                    assert!(r.contains(&domain_of(s, 32)));
                    assert!(r.contains(&domain_of(partner, 32)));
                }
            }
        }
    }

    #[test]
    fn surplus_shards_are_empty() {
        let d = mixed_decoded(300, 8); // 4 pair domains
        let plan = ShardedTrace::partition(&d, 16);
        assert_eq!(plan.shard_count(), 16);
        assert_eq!(plan.domain_count(), 4);
        let nonempty = plan.shards().iter().filter(|s| !s.is_empty()).count();
        assert!(nonempty <= 4);
        let total: usize = plan.shards().iter().map(|s| s.len()).sum();
        assert_eq!(total, 300);
        for s in plan.shards() {
            if s.domain_range().is_empty() {
                assert!(s.is_empty());
            }
        }
    }

    #[test]
    fn single_set_geometry_collapses_to_one_domain() {
        let d = mixed_decoded(100, 1);
        let plan = ShardedTrace::partition(&d, 4);
        assert_eq!(plan.domain_count(), 1);
        let nonempty: Vec<&TraceShard> = plan.shards().iter().filter(|s| !s.is_empty()).collect();
        assert_eq!(nonempty.len(), 1);
        assert_eq!(nonempty[0].len(), 100);
        assert_eq!(nonempty[0].owned_sets().collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn owned_sets_partition_the_set_space() {
        let d = mixed_decoded(10, 64);
        for shards in [1, 3, 4, 7] {
            let plan = ShardedTrace::partition(&d, shards);
            let mut owned: Vec<usize> = plan.shards().iter().flat_map(|s| s.owned_sets()).collect();
            owned.sort_unstable();
            assert_eq!(owned, (0..64).collect::<Vec<_>>());
        }
    }

    #[test]
    fn split_before_matches_linear_scan() {
        let d = mixed_decoded(350, 64);
        let plan = ShardedTrace::partition(&d, 7);
        for boundary in [0, 1, 70, 349, 350] {
            for shard in plan.shards() {
                let linear = shard
                    .orig_indices()
                    .iter()
                    .filter(|&&o| (o as usize) < boundary)
                    .count();
                assert_eq!(shard.split_before(boundary), linear);
            }
            let total: usize = plan.shards().iter().map(|s| s.split_before(boundary)).sum();
            assert_eq!(total, boundary);
        }
    }

    #[test]
    fn shard_instructions_sum_to_source() {
        let d = mixed_decoded(300, 64);
        let plan = ShardedTrace::partition(&d, 4);
        let sum: u64 = plan.shards().iter().map(|s| s.trace().instructions()).sum();
        assert_eq!(sum, d.instructions());
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let d = mixed_decoded(50, 8);
        let plan = ShardedTrace::partition(&d, 0);
        assert_eq!(plan.shard_count(), 1);
        assert_eq!(plan.shards()[0].len(), 50);
    }
}
