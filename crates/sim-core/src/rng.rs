//! A tiny deterministic pseudo-random number generator.
//!
//! Several schemes need cheap randomness *inside* the cache controller: BIP's
//! bimodal insertion throttle, and STEM's probabilistic 1-in-2ⁿ decrement of
//! the spatial saturating counter ("the random number generator can be simply
//! incorporated in the LLC controller", §4.4). Using a self-contained
//! SplitMix64 keeps every simulation bit-for-bit reproducible from its seed
//! and keeps the simulator crates free of external dependencies.

/// A SplitMix64 pseudo-random number generator.
///
/// # Examples
///
/// ```
/// use stem_sim_core::SplitMix64;
///
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64 pseudo-random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a value uniform in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift bounded sampling; bias is negligible for the small
        // bounds used by cache policies.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Returns `true` with probability `1 / 2^n`.
    ///
    /// This is exactly the hardware trick the paper describes for the
    /// spatial counter: "decremented by one only when an n-bit value
    /// produced by a random number generator is zero" (§4.4).
    #[inline]
    pub fn one_in_pow2(&mut self, n: u32) -> bool {
        debug_assert!(n < 64);
        self.next_u64() & ((1u64 << n) - 1) == 0
    }

    /// Returns `true` with probability `num / den`.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero.
    #[inline]
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.next_below(den) < num
    }
}

impl Default for SplitMix64 {
    fn default() -> Self {
        SplitMix64::new(0x5EED_5EED_5EED_5EED)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SplitMix64::new(123);
        let mut b = SplitMix64::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn next_below_in_range() {
        let mut r = SplitMix64::new(9);
        for _ in 0..1000 {
            assert!(r.next_below(7) < 7);
        }
    }

    #[test]
    fn one_in_pow2_rate_is_plausible() {
        let mut r = SplitMix64::new(42);
        let n = 3; // expect ~1/8
        let hits = (0..80_000).filter(|_| r.one_in_pow2(n)).count();
        let expected = 10_000.0;
        assert!(
            (hits as f64 - expected).abs() < expected * 0.1,
            "1-in-8 sampling rate off: {hits}"
        );
    }

    #[test]
    fn one_in_pow2_zero_always_true() {
        let mut r = SplitMix64::new(5);
        assert!((0..100).all(|_| r.one_in_pow2(0)));
    }

    #[test]
    fn chance_extremes() {
        let mut r = SplitMix64::new(11);
        assert!((0..100).all(|_| r.chance(1, 1)));
        assert!((0..100).all(|_| !r.chance(0, 5)));
    }

    #[test]
    #[should_panic(expected = "bound")]
    fn next_below_zero_panics() {
        SplitMix64::new(0).next_below(0);
    }
}
