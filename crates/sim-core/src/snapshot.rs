//! Checkpoint/restore of warm simulator state.
//!
//! A [`Snapshot`] freezes everything a cache needs to resume a replay at
//! an access boundary: the [`SetFrames`] tag store, the per-scheme
//! replacement-policy state (type-erased behind [`PolicyState`]), and the
//! [`CacheStats`] counters. It exists so the warm-up prefix shared by a
//! family of runs — sweep points over the same `(benchmark, scheme,
//! geometry)`, repeat service requests — is replayed **once**, snapshotted,
//! and restored per consumer instead of recomputed from cold.
//!
//! # The contract
//!
//! Restore is exact, not approximate: a cache restored from a snapshot
//! taken at access *k* must produce, for every subsequent access, exactly
//! the [`AccessResult`](crate::AccessResult) the cold run produces after
//! its own first *k* accesses, and identical [`CacheStats`]. Anything
//! weaker would let a warm-started run drift from its cold twin, and the
//! workspace's determinism gates (byte-identical stdout/CSVs at every
//! `STEM_THREADS`/`STEM_SHARDS`/`STEM_SNAPSHOTS` setting) would catch it.
//!
//! The capability is strictly opt-in, mirroring the set-sharding and
//! set-sampling boundaries ([`CacheModel::supports_set_sharding`],
//! [`CacheModel::supports_set_sampling`]): a scheme whose state cannot be
//! captured cheaply and exactly (STEM's shadow-set/SCDM machinery, V-Way's
//! decoupled global tag/data store, dynamic SBC's association map) simply
//! declines, and every dispatcher silently runs it cold.
//!
//! [`CacheModel::supports_set_sharding`]: crate::CacheModel::supports_set_sharding
//! [`CacheModel::supports_set_sampling`]: crate::CacheModel::supports_set_sampling

use std::any::Any;
use std::fmt;

use crate::{CacheGeometry, CacheStats, SetFrames};

/// Why a snapshot could not be taken or restored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The scheme declines the capability entirely (named so refusals are
    /// diagnosable: the message carries the scheme and its disqualifying
    /// state).
    Unsupported {
        /// The refusing scheme's report name.
        scheme: String,
    },
    /// The snapshot was taken from a different scheme than the restore
    /// target.
    SchemeMismatch {
        /// Scheme the snapshot was captured from.
        expected: String,
        /// Scheme the restore was attempted on.
        found: String,
    },
    /// The snapshot's geometry does not match the restore target's.
    GeometryMismatch {
        /// Geometry the snapshot was captured at.
        expected: CacheGeometry,
        /// Geometry of the restore target.
        found: CacheGeometry,
    },
    /// The type-erased policy state did not downcast to the target
    /// policy's own type (two schemes sharing a report name, or a
    /// hand-built snapshot).
    StateMismatch {
        /// The restore target's report name.
        scheme: String,
    },
    /// A composite snapshot (e.g. a whole-hierarchy checkpoint) was taken
    /// under a different system configuration than the restore target's.
    ConfigMismatch,
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Unsupported { scheme } => {
                write!(f, "scheme {scheme} does not support snapshot/restore")
            }
            SnapshotError::SchemeMismatch { expected, found } => {
                write!(f, "snapshot of scheme {expected} cannot restore {found}")
            }
            SnapshotError::GeometryMismatch { expected, found } => write!(
                f,
                "snapshot at {}x{} sets x ways cannot restore a {}x{} cache",
                expected.sets(),
                expected.ways(),
                found.sets(),
                found.ways()
            ),
            SnapshotError::StateMismatch { scheme } => {
                write!(f, "snapshot policy state is not {scheme}'s own state type")
            }
            SnapshotError::ConfigMismatch => {
                write!(
                    f,
                    "snapshot system configuration does not match the restore target"
                )
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// The clone-behind-`dyn` plumbing for type-erased policy state.
///
/// Blanket-implemented for every `'static + Send + Sync + Clone` type, so
/// a policy opts in by handing [`PolicyState::new`] a plain `Clone` of its
/// own state struct — no per-policy trait impl to write.
pub trait PolicyPayload: Any + Send + Sync {
    /// Clones the payload behind the trait object.
    fn clone_payload(&self) -> Box<dyn PolicyPayload>;

    /// Upcast for downcasting back to the concrete state type.
    fn as_any(&self) -> &dyn Any;
}

impl<T: Any + Send + Sync + Clone> PolicyPayload for T {
    fn clone_payload(&self) -> Box<dyn PolicyPayload> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Type-erased, cloneable replacement-policy state captured by a
/// snapshot.
///
/// Each policy stores whatever it needs (usually a `Clone` of itself) and
/// gets it back with [`downcast_ref`](PolicyState::downcast_ref) at
/// restore time; a failed downcast surfaces as
/// [`SnapshotError::StateMismatch`] rather than corrupt state.
pub struct PolicyState(Box<dyn PolicyPayload>);

impl PolicyState {
    /// Wraps a policy's own state.
    pub fn new<T: Any + Send + Sync + Clone>(state: T) -> PolicyState {
        PolicyState(Box::new(state))
    }

    /// The captured state, if it is a `T`.
    pub fn downcast_ref<T: Any>(&self) -> Option<&T> {
        self.0.as_any().downcast_ref::<T>()
    }
}

impl Clone for PolicyState {
    fn clone(&self) -> Self {
        PolicyState(self.0.clone_payload())
    }
}

impl fmt::Debug for PolicyState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("PolicyState").finish()
    }
}

/// A checkpoint of one cache's complete replay state at an access
/// boundary: tag store, policy state, and statistics counters.
///
/// Snapshots are taken by [`CacheModel::snapshot`] and consumed by
/// [`CacheModel::restore`]; [`verify_target`](Snapshot::verify_target)
/// is the shared scheme/geometry guard every restore implementation runs
/// first, so a snapshot can never be silently applied to the wrong cache.
///
/// [`CacheModel::snapshot`]: crate::CacheModel::snapshot
/// [`CacheModel::restore`]: crate::CacheModel::restore
#[derive(Debug, Clone)]
pub struct Snapshot {
    scheme: String,
    geometry: CacheGeometry,
    frames: SetFrames,
    stats: CacheStats,
    policy: PolicyState,
}

impl Snapshot {
    /// Assembles a snapshot from its parts.
    pub fn new(
        scheme: impl Into<String>,
        geometry: CacheGeometry,
        frames: SetFrames,
        stats: CacheStats,
        policy: PolicyState,
    ) -> Snapshot {
        Snapshot {
            scheme: scheme.into(),
            geometry,
            frames,
            stats,
            policy,
        }
    }

    /// Report name of the scheme this snapshot was captured from.
    pub fn scheme(&self) -> &str {
        &self.scheme
    }

    /// Geometry the snapshot was captured at.
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// The captured tag store.
    pub fn frames(&self) -> &SetFrames {
        &self.frames
    }

    /// The captured statistics counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// The captured policy state.
    pub fn policy(&self) -> &PolicyState {
        &self.policy
    }

    /// The shared restore guard: the snapshot applies only to a cache with
    /// the same report name and the same geometry.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::SchemeMismatch`] or
    /// [`SnapshotError::GeometryMismatch`] naming both sides.
    pub fn verify_target(
        &self,
        scheme: &str,
        geometry: CacheGeometry,
    ) -> Result<(), SnapshotError> {
        if self.scheme != scheme {
            return Err(SnapshotError::SchemeMismatch {
                expected: self.scheme.clone(),
                found: scheme.to_owned(),
            });
        }
        if self.geometry != geometry {
            return Err(SnapshotError::GeometryMismatch {
                expected: self.geometry,
                found: geometry,
            });
        }
        Ok(())
    }
}

/// The standard refusal every non-snapshotting scheme returns from
/// `restore`.
pub fn unsupported(scheme: &str) -> SnapshotError {
    SnapshotError::Unsupported {
        scheme: scheme.to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(scheme: &str, geom: CacheGeometry) -> Snapshot {
        Snapshot::new(
            scheme,
            geom,
            SetFrames::new(geom.sets(), geom.ways()),
            CacheStats::default(),
            PolicyState::new(7u32),
        )
    }

    #[test]
    fn policy_state_round_trips_through_clone_and_downcast() {
        let state = PolicyState::new(vec![1u8, 2, 3]);
        let cloned = state.clone();
        assert_eq!(cloned.downcast_ref::<Vec<u8>>(), Some(&vec![1u8, 2, 3]));
        assert!(cloned.downcast_ref::<u32>().is_none(), "wrong type is None");
    }

    #[test]
    fn verify_target_guards_scheme_and_geometry() {
        let geom = CacheGeometry::new(64, 4, 64).unwrap();
        let other = CacheGeometry::new(64, 8, 64).unwrap();
        let s = snap("LRU", geom);
        assert_eq!(s.verify_target("LRU", geom), Ok(()));
        assert!(matches!(
            s.verify_target("DIP", geom),
            Err(SnapshotError::SchemeMismatch { .. })
        ));
        assert!(matches!(
            s.verify_target("LRU", other),
            Err(SnapshotError::GeometryMismatch { .. })
        ));
    }

    #[test]
    fn errors_render_actionable_messages() {
        let geom = CacheGeometry::new(64, 4, 64).unwrap();
        let other = CacheGeometry::new(128, 8, 64).unwrap();
        assert_eq!(
            unsupported("STEM").to_string(),
            "scheme STEM does not support snapshot/restore"
        );
        let s = snap("LRU", geom);
        let msg = s.verify_target("LRU", other).unwrap_err().to_string();
        assert!(msg.contains("64x4") && msg.contains("128x8"), "{msg}");
        let msg = s.verify_target("PeLIFO", geom).unwrap_err().to_string();
        assert!(msg.contains("LRU") && msg.contains("PeLIFO"), "{msg}");
        assert_eq!(
            SnapshotError::StateMismatch {
                scheme: "DIP".into()
            }
            .to_string(),
            "snapshot policy state is not DIP's own state type"
        );
    }
}
