//! The latency algebra of the paper's evaluation (§5.1, Table 1).
//!
//! The L2 has decoupled tag and data stores. The paper prices L2 outcomes
//! as follows (with the default 6-cycle tag-store and 8-cycle data-store
//! latencies):
//!
//! | outcome | composition | cycles |
//! |---|---|---|
//! | local hit | tag + data | 14 |
//! | local miss | tag | 6 (+ memory) |
//! | cooperative hit | 2 × tag + data | 20 |
//! | cooperative miss | 2 × tag | 12 (+ memory) |
//!
//! Only SBC and STEM can produce the cooperative rows, which is why MPKI
//! alone "is not a direct metric for comparing throughput" (§5.2) and the
//! paper also reports AMAT and CPI.

use crate::model::AccessResult;

/// Latencies of the simulated memory system, in core cycles.
///
/// Construct with [`TimingParams::micro2010`] for the paper's Table 1
/// values, or customise via the `with_*` builders.
///
/// # Examples
///
/// ```
/// use stem_sim_core::{AccessResult, TimingParams};
///
/// let t = TimingParams::micro2010();
/// assert_eq!(t.l2_latency(AccessResult::HitLocal), 14);
/// assert_eq!(t.l2_latency(AccessResult::MissCooperative), 12);
/// assert_eq!(t.total_latency(AccessResult::MissLocal), 1 + 6 + 300);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimingParams {
    l1_hit: u64,
    l2_tag: u64,
    l2_data: u64,
    memory: u64,
}

impl TimingParams {
    /// The paper's configuration (Table 1 / §5.1): L1 hit 1 cycle (2 for
    /// data; we use the instruction-side 1 plus model the extra data cycle
    /// in the hierarchy crate), L2 tag 6, L2 data 8, memory 300.
    pub fn micro2010() -> Self {
        TimingParams {
            l1_hit: 1,
            l2_tag: 6,
            l2_data: 8,
            memory: 300,
        }
    }

    /// Sets the L1 hit latency.
    pub fn with_l1_hit(mut self, cycles: u64) -> Self {
        self.l1_hit = cycles;
        self
    }

    /// Sets the L2 tag-store access latency.
    pub fn with_l2_tag(mut self, cycles: u64) -> Self {
        self.l2_tag = cycles;
        self
    }

    /// Sets the L2 data-store access latency.
    pub fn with_l2_data(mut self, cycles: u64) -> Self {
        self.l2_data = cycles;
        self
    }

    /// Sets the main-memory latency.
    pub fn with_memory(mut self, cycles: u64) -> Self {
        self.memory = cycles;
        self
    }

    /// L1 hit latency in cycles.
    #[inline]
    pub fn l1_hit(&self) -> u64 {
        self.l1_hit
    }

    /// L2 tag-store latency in cycles.
    #[inline]
    pub fn l2_tag(&self) -> u64 {
        self.l2_tag
    }

    /// L2 data-store latency in cycles.
    #[inline]
    pub fn l2_data(&self) -> u64 {
        self.l2_data
    }

    /// Main-memory latency in cycles.
    #[inline]
    pub fn memory(&self) -> u64 {
        self.memory
    }

    /// Cycles spent inside the L2 for the given access outcome, following
    /// §5.1 exactly (see the module docs for the composition table).
    pub fn l2_latency(&self, result: AccessResult) -> u64 {
        match result {
            AccessResult::HitLocal => self.l2_tag + self.l2_data,
            AccessResult::HitCooperative => 2 * self.l2_tag + self.l2_data,
            AccessResult::MissLocal => self.l2_tag,
            AccessResult::MissCooperative => 2 * self.l2_tag,
        }
    }

    /// Total latency of an L1-missing access: L1 probe + L2 cycles + memory
    /// on an L2 miss.
    pub fn total_latency(&self, result: AccessResult) -> u64 {
        let mem = if result.is_hit() { 0 } else { self.memory };
        self.l1_hit + self.l2_latency(result) + mem
    }
}

impl Default for TimingParams {
    fn default() -> Self {
        TimingParams::micro2010()
    }
}

/// The latency breakdown of one access through the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AccessLatency {
    /// Cycles to probe the L1.
    pub l1: u64,
    /// Cycles spent in the L2 (0 when the L1 hit).
    pub l2: u64,
    /// Cycles spent in main memory (0 unless the L2 missed).
    pub memory: u64,
}

impl AccessLatency {
    /// Total cycles.
    #[inline]
    pub fn total(&self) -> u64 {
        self.l1 + self.l2 + self.memory
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_latency_table() {
        let t = TimingParams::micro2010();
        // §5.1: hit = one tag + one data = 14; miss = one tag = 6;
        // coop miss = two tags = 12; coop hit = two tags + data = 20.
        assert_eq!(t.l2_latency(AccessResult::HitLocal), 14);
        assert_eq!(t.l2_latency(AccessResult::MissLocal), 6);
        assert_eq!(t.l2_latency(AccessResult::MissCooperative), 12);
        assert_eq!(t.l2_latency(AccessResult::HitCooperative), 20);
    }

    #[test]
    fn total_latency_adds_memory_only_on_miss() {
        let t = TimingParams::micro2010();
        assert_eq!(t.total_latency(AccessResult::HitLocal), 15);
        assert_eq!(t.total_latency(AccessResult::HitCooperative), 21);
        assert_eq!(t.total_latency(AccessResult::MissLocal), 307);
        assert_eq!(t.total_latency(AccessResult::MissCooperative), 313);
    }

    #[test]
    fn builders_override_fields() {
        let t = TimingParams::micro2010()
            .with_l1_hit(2)
            .with_l2_tag(5)
            .with_l2_data(9)
            .with_memory(200);
        assert_eq!(t.l1_hit(), 2);
        assert_eq!(t.l2_tag(), 5);
        assert_eq!(t.l2_data(), 9);
        assert_eq!(t.memory(), 200);
        assert_eq!(t.l2_latency(AccessResult::HitLocal), 14);
        assert_eq!(t.total_latency(AccessResult::MissLocal), 2 + 5 + 200);
    }

    #[test]
    fn access_latency_total() {
        let l = AccessLatency {
            l1: 1,
            l2: 14,
            memory: 0,
        };
        assert_eq!(l.total(), 15);
        assert_eq!(AccessLatency::default().total(), 0);
    }
}
