//! Individual memory accesses as seen by the cache hierarchy.

use std::fmt;

use crate::Address;

/// Whether an access reads or writes the referenced line.
///
/// The schemes in this workspace are allocate-on-write, so reads and writes
/// follow the same lookup/replacement path; writes additionally mark the
/// line dirty, which feeds the write-back accounting in
/// [`CacheStats`](crate::CacheStats).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AccessKind {
    /// A load (or instruction fetch).
    #[default]
    Read,
    /// A store.
    Write,
}

impl AccessKind {
    /// Returns `true` for [`AccessKind::Write`].
    #[inline]
    pub fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Read => f.write_str("read"),
            AccessKind::Write => f.write_str("write"),
        }
    }
}

/// One memory access in a trace.
///
/// `inst_gap` is the number of instructions retired since the previous
/// memory access; it is what converts raw miss counts into the paper's
/// MPKI/CPI metrics (misses and cycles *per instruction*).
///
/// # Examples
///
/// ```
/// use stem_sim_core::{Access, AccessKind, Address};
///
/// let a = Access::read(Address::new(0x40)).with_inst_gap(7);
/// assert_eq!(a.kind, AccessKind::Read);
/// assert_eq!(a.inst_gap, 7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Access {
    /// The byte address referenced.
    pub addr: Address,
    /// Read or write.
    pub kind: AccessKind,
    /// Instructions retired since the previous access (at least 1 so that
    /// instruction counts advance).
    pub inst_gap: u32,
}

impl Access {
    /// Creates a read access with an instruction gap of 1.
    #[inline]
    pub fn read(addr: Address) -> Self {
        Access {
            addr,
            kind: AccessKind::Read,
            inst_gap: 1,
        }
    }

    /// Creates a write access with an instruction gap of 1.
    #[inline]
    pub fn write(addr: Address) -> Self {
        Access {
            addr,
            kind: AccessKind::Write,
            inst_gap: 1,
        }
    }

    /// Sets the instruction gap, returning the modified access.
    #[inline]
    pub fn with_inst_gap(mut self, gap: u32) -> Self {
        self.inst_gap = gap.max(1);
        self
    }
}

impl From<Address> for Access {
    /// A bare address converts to a read with unit instruction gap.
    fn from(addr: Address) -> Self {
        Access::read(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_kind() {
        assert!(!Access::read(Address::new(0)).kind.is_write());
        assert!(Access::write(Address::new(0)).kind.is_write());
    }

    #[test]
    fn inst_gap_is_at_least_one() {
        assert_eq!(Access::read(Address::new(0)).with_inst_gap(0).inst_gap, 1);
        assert_eq!(Access::read(Address::new(0)).with_inst_gap(9).inst_gap, 9);
    }

    #[test]
    fn from_address_is_read() {
        let a: Access = Address::new(0x80).into();
        assert_eq!(a.kind, AccessKind::Read);
        assert_eq!(a.inst_gap, 1);
    }

    #[test]
    fn kind_display() {
        assert_eq!(AccessKind::Read.to_string(), "read");
        assert_eq!(AccessKind::Write.to_string(), "write");
    }
}
