//! Hit/miss accounting shared by every cache scheme.

use std::fmt;
use std::ops::{Add, AddAssign};

/// Aggregate event counters for one cache.
///
/// Every [`CacheModel`](crate::CacheModel) updates one of these as it
/// processes accesses. The counters cover the events the paper's evaluation
/// needs: plain hits/misses (MPKI), *cooperative* hits and second-lookup
/// misses (the SBC/STEM latency classes of §5.1), spills/receives (inter-set
/// cooperation traffic), evictions and write-backs.
///
/// # Examples
///
/// ```
/// use stem_sim_core::CacheStats;
///
/// let mut s = CacheStats::default();
/// s.record_local_hit();
/// s.record_local_miss();
/// assert_eq!(s.accesses(), 2);
/// assert_eq!(s.miss_rate(), 0.5);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    local_hits: u64,
    coop_hits: u64,
    local_misses: u64,
    coop_misses: u64,
    evictions: u64,
    writebacks: u64,
    spills: u64,
    receives: u64,
    policy_swaps: u64,
    couplings: u64,
    decouplings: u64,
}

impl CacheStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        CacheStats::default()
    }

    /// Records a hit satisfied by the block's home set.
    #[inline]
    pub fn record_local_hit(&mut self) {
        self.local_hits += 1;
    }

    /// Records a hit satisfied by a cooperative (coupled) set.
    #[inline]
    pub fn record_coop_hit(&mut self) {
        self.coop_hits += 1;
    }

    /// Records a miss that probed only the home set.
    #[inline]
    pub fn record_local_miss(&mut self) {
        self.local_misses += 1;
    }

    /// Records a miss that probed the home set and a cooperative set.
    #[inline]
    pub fn record_coop_miss(&mut self) {
        self.coop_misses += 1;
    }

    /// Records an eviction of a valid block.
    #[inline]
    pub fn record_eviction(&mut self) {
        self.evictions += 1;
    }

    /// Records a write-back of a dirty block.
    #[inline]
    pub fn record_writeback(&mut self) {
        self.writebacks += 1;
    }

    /// Records a victim block spilled to a cooperative set.
    #[inline]
    pub fn record_spill(&mut self) {
        self.spills += 1;
    }

    /// Records a victim block received from a coupled set.
    #[inline]
    pub fn record_receive(&mut self) {
        self.receives += 1;
    }

    /// Records a per-set replacement-policy swap (STEM's SC_T event).
    #[inline]
    pub fn record_policy_swap(&mut self) {
        self.policy_swaps += 1;
    }

    /// Records the coupling of a taker/giver (or source/destination) pair.
    #[inline]
    pub fn record_coupling(&mut self) {
        self.couplings += 1;
    }

    /// Records the dissolution of a coupled pair.
    #[inline]
    pub fn record_decoupling(&mut self) {
        self.decouplings += 1;
    }

    /// Total hits (local + cooperative).
    #[inline]
    pub fn hits(&self) -> u64 {
        self.local_hits + self.coop_hits
    }

    /// Total misses (local + after-cooperative-probe).
    #[inline]
    pub fn misses(&self) -> u64 {
        self.local_misses + self.coop_misses
    }

    /// Total accesses.
    #[inline]
    pub fn accesses(&self) -> u64 {
        self.hits() + self.misses()
    }

    /// Hits satisfied by the home set.
    #[inline]
    pub fn local_hits(&self) -> u64 {
        self.local_hits
    }

    /// Hits satisfied by a cooperative set (priced at the paper's
    /// second-access latency).
    #[inline]
    pub fn coop_hits(&self) -> u64 {
        self.coop_hits
    }

    /// Misses that probed only the home set.
    #[inline]
    pub fn local_misses(&self) -> u64 {
        self.local_misses
    }

    /// Misses that also probed a cooperative set.
    #[inline]
    pub fn coop_misses(&self) -> u64 {
        self.coop_misses
    }

    /// Valid-block evictions.
    #[inline]
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Dirty write-backs.
    #[inline]
    pub fn writebacks(&self) -> u64 {
        self.writebacks
    }

    /// Victims spilled to cooperative sets.
    #[inline]
    pub fn spills(&self) -> u64 {
        self.spills
    }

    /// Victims received from coupled sets.
    #[inline]
    pub fn receives(&self) -> u64 {
        self.receives
    }

    /// Per-set policy swaps.
    #[inline]
    pub fn policy_swaps(&self) -> u64 {
        self.policy_swaps
    }

    /// Pairs formed.
    #[inline]
    pub fn couplings(&self) -> u64 {
        self.couplings
    }

    /// Pairs dissolved.
    #[inline]
    pub fn decouplings(&self) -> u64 {
        self.decouplings
    }

    /// Miss rate in `[0, 1]`; 0 for an untouched cache.
    pub fn miss_rate(&self) -> f64 {
        let acc = self.accesses();
        if acc == 0 {
            0.0
        } else {
            self.misses() as f64 / acc as f64
        }
    }

    /// Misses per 1000 instructions, the paper's primary metric.
    pub fn mpki(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            0.0
        } else {
            self.misses() as f64 * 1000.0 / instructions as f64
        }
    }
}

impl Add for CacheStats {
    type Output = CacheStats;

    fn add(self, rhs: CacheStats) -> CacheStats {
        CacheStats {
            local_hits: self.local_hits + rhs.local_hits,
            coop_hits: self.coop_hits + rhs.coop_hits,
            local_misses: self.local_misses + rhs.local_misses,
            coop_misses: self.coop_misses + rhs.coop_misses,
            evictions: self.evictions + rhs.evictions,
            writebacks: self.writebacks + rhs.writebacks,
            spills: self.spills + rhs.spills,
            receives: self.receives + rhs.receives,
            policy_swaps: self.policy_swaps + rhs.policy_swaps,
            couplings: self.couplings + rhs.couplings,
            decouplings: self.decouplings + rhs.decouplings,
        }
    }
}

impl AddAssign for CacheStats {
    fn add_assign(&mut self, rhs: CacheStats) {
        *self = *self + rhs;
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "accesses={} hits={} (coop {}) misses={} (coop-probed {}) miss-rate={:.4}",
            self.accesses(),
            self.hits(),
            self.coop_hits,
            self.misses(),
            self.coop_misses,
            self.miss_rate()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_and_rates() {
        let mut s = CacheStats::new();
        for _ in 0..3 {
            s.record_local_hit();
        }
        s.record_coop_hit();
        s.record_local_miss();
        s.record_coop_miss();
        assert_eq!(s.hits(), 4);
        assert_eq!(s.misses(), 2);
        assert_eq!(s.accesses(), 6);
        assert!((s.miss_rate() - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn mpki_per_1k_instructions() {
        let mut s = CacheStats::new();
        for _ in 0..5 {
            s.record_local_miss();
        }
        assert_eq!(s.mpki(1000), 5.0);
        assert_eq!(s.mpki(2000), 2.5);
        assert_eq!(s.mpki(0), 0.0);
    }

    #[test]
    fn empty_stats_have_zero_rates() {
        let s = CacheStats::default();
        assert_eq!(s.miss_rate(), 0.0);
        assert_eq!(s.accesses(), 0);
    }

    #[test]
    fn add_merges_all_fields() {
        let mut a = CacheStats::new();
        a.record_local_hit();
        a.record_spill();
        a.record_coupling();
        let mut b = CacheStats::new();
        b.record_coop_miss();
        b.record_receive();
        b.record_policy_swap();
        b.record_decoupling();
        b.record_eviction();
        b.record_writeback();
        let c = a + b;
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        assert_eq!(c.spills(), 1);
        assert_eq!(c.receives(), 1);
        assert_eq!(c.policy_swaps(), 1);
        assert_eq!(c.couplings(), 1);
        assert_eq!(c.decouplings(), 1);
        assert_eq!(c.evictions(), 1);
        assert_eq!(c.writebacks(), 1);
        let mut d = a;
        d += b;
        assert_eq!(d, c);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!CacheStats::default().to_string().is_empty());
    }
}
