//! Core substrate for the STEM last-level-cache reproduction.
//!
//! This crate provides the vocabulary types shared by every cache scheme in
//! the workspace:
//!
//! * [`Address`] / [`LineAddr`] — physical addresses and line-granular
//!   addresses (the paper simulates 44-bit Alpha physical addresses);
//! * [`CacheGeometry`] — sets × ways × line-size arithmetic (tag/index/offset
//!   extraction);
//! * [`Access`], [`AccessKind`], [`Trace`] — trace-driven simulation inputs;
//! * [`DecodedTrace`] — a structure-of-arrays `(Trace, CacheGeometry)`
//!   decode (set indices, line addresses, packed write flags) performed once
//!   and replayed by every scheme;
//! * [`SetFrames`] — flat structure-of-arrays tag storage (contiguous tag
//!   words plus bit-packed valid/dirty/flag words) backing every scheme's
//!   set frames;
//! * [`CacheStats`] — hit/miss/spill accounting and MPKI;
//! * [`TimingParams`] — the latency algebra of the paper's §5.1 / Table 1;
//! * [`SaturatingCounter`] — the k-bit saturating counters used by STEM's
//!   set-level capacity-demand monitor (and by SBC/DIP);
//! * [`SplitMix64`] — a tiny deterministic RNG so every simulation is
//!   reproducible without external crates;
//! * [`CacheModel`] — the object-safe trait all six schemes implement;
//! * [`Snapshot`] / [`PolicyState`] — opt-in checkpoint/restore of warm
//!   replay state (tag store + policy state + stats), so shared warm-up
//!   prefixes are replayed once and restored per consumer;
//! * [`InvariantAuditor`] / [`run_audited`] — checked simulation mode that
//!   verifies each scheme's internal bookkeeping during a run;
//! * [`SimError`] / [`TraceError`] — the workspace-wide error taxonomy;
//! * [`json`] — the hand-rolled JSON value/writer/parser shared by the
//!   bench artifacts and the `stem-serve` request/response bodies;
//! * [`prop`] — an in-repo deterministic property-testing harness so the
//!   whole workspace builds and tests offline.
//!
//! # Examples
//!
//! ```
//! use stem_sim_core::{Address, CacheGeometry};
//!
//! # fn main() -> Result<(), stem_sim_core::GeometryError> {
//! let geom = CacheGeometry::new(2048, 16, 64)?; // the paper's 2MB L2
//! let addr = Address::new(0x1234_5678);
//! assert_eq!(geom.set_index(addr), ((0x1234_5678u64 >> 6) % 2048) as usize);
//! # Ok(())
//! # }
//! ```

mod access;
mod addr;
mod audit;
mod counter;
mod decoded;
mod error;
mod frames;
mod geometry;
pub mod io;
pub mod json;
mod model;
pub mod prop;
mod rng;
mod sample;
mod shard;
pub mod snapshot;
mod stats;
mod timing;
mod trace;

pub use access::{Access, AccessKind};
pub use addr::{Address, LineAddr};
pub use audit::{run_audited, AuditError, AuditedCacheModel, InvariantAuditor};
pub use counter::SaturatingCounter;
pub use decoded::{DecodedAccess, DecodedIter, DecodedTrace};
pub use error::{GeometryError, SimError, TraceError};
pub use frames::{Frame, SetFrames};
pub use geometry::CacheGeometry;
pub use json::{Json, JsonError};
pub use model::{replay_decoded_via_access, AccessResult, CacheModel};
pub use rng::SplitMix64;
pub use sample::SampledTrace;
pub use shard::{ShardedTrace, TraceShard};
pub use snapshot::{PolicyState, Snapshot, SnapshotError};
pub use stats::CacheStats;
pub use timing::{AccessLatency, TimingParams};
pub use trace::{Trace, TraceStats};
