//! Error types for cache configuration.

use std::error::Error;
use std::fmt;

/// An invalid cache geometry was requested.
///
/// Returned by [`CacheGeometry::new`](crate::CacheGeometry::new).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GeometryError {
    /// The number of sets must be a non-zero power of two (the MOD indexing
    /// function of §2.1 requires it).
    SetsNotPowerOfTwo(usize),
    /// The line size must be a non-zero power of two.
    LineBytesNotPowerOfTwo(u64),
    /// Associativity must be at least 1.
    ZeroWays,
}

impl fmt::Display for GeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeometryError::SetsNotPowerOfTwo(n) => {
                write!(f, "number of sets ({n}) is not a non-zero power of two")
            }
            GeometryError::LineBytesNotPowerOfTwo(n) => {
                write!(f, "line size ({n} bytes) is not a non-zero power of two")
            }
            GeometryError::ZeroWays => write!(f, "associativity must be at least 1"),
        }
    }
}

impl Error for GeometryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_unpunctuated() {
        for err in [
            GeometryError::SetsNotPowerOfTwo(3),
            GeometryError::LineBytesNotPowerOfTwo(7),
            GeometryError::ZeroWays,
        ] {
            let msg = err.to_string();
            assert!(!msg.is_empty());
            assert!(!msg.ends_with('.'));
            assert!(msg.chars().next().unwrap().is_lowercase() || msg.starts_with(char::is_numeric));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GeometryError>();
    }
}
