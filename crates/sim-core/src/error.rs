//! The workspace-wide error taxonomy.
//!
//! Every fallible operation in the simulator surfaces through one of five
//! families, unified under [`SimError`]:
//!
//! * [`GeometryError`] — an impossible cache shape was requested;
//! * [`SimError::Config`] — a scheme-specific parameter is out of range;
//! * [`TraceError`] — a trace file is corrupt, truncated, or oversized;
//! * [`AuditError`](crate::AuditError) — checked mode caught a structural
//!   invariant violation;
//! * [`JsonError`](crate::json::JsonError) — a JSON document (an
//!   experiment request, a recorded artifact) failed strict parsing.
//!
//! Schemes never panic on malformed external input (traces, configs);
//! panics are reserved for internal invariant violations that checked mode
//! exists to catch early.

use std::error::Error;
use std::fmt;
use std::io;

use crate::json::JsonError;
use crate::AuditError;

/// An invalid cache geometry was requested.
///
/// Returned by [`CacheGeometry::new`](crate::CacheGeometry::new).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GeometryError {
    /// The number of sets must be a non-zero power of two (the MOD indexing
    /// function of §2.1 requires it).
    SetsNotPowerOfTwo(usize),
    /// The line size must be a non-zero power of two.
    LineBytesNotPowerOfTwo(u64),
    /// Associativity must be at least 1.
    ZeroWays,
}

impl fmt::Display for GeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeometryError::SetsNotPowerOfTwo(n) => {
                write!(f, "number of sets ({n}) is not a non-zero power of two")
            }
            GeometryError::LineBytesNotPowerOfTwo(n) => {
                write!(f, "line size ({n} bytes) is not a non-zero power of two")
            }
            GeometryError::ZeroWays => write!(f, "associativity must be at least 1"),
        }
    }
}

impl Error for GeometryError {}

/// A `STEMTRC1` trace could not be read.
///
/// Returned by [`io::read_trace`](crate::io::read_trace). Distinguishes
/// transport failures ([`TraceError::Io`]) from format corruption so fault
/// handling can treat "disk broke" and "file is garbage" differently.
#[derive(Debug)]
pub enum TraceError {
    /// The underlying reader failed (includes truncation, surfaced as
    /// `UnexpectedEof`).
    Io(io::Error),
    /// The first 8 bytes are not the `STEMTRC1` magic.
    BadMagic([u8; 8]),
    /// A record carried an access-kind byte other than 0 (read) or 1
    /// (write).
    BadKind(u8),
    /// The declared record count does not fit in this platform's `usize`.
    TooLarge(u64),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace read failed: {e}"),
            TraceError::BadMagic(m) => {
                write!(f, "not a STEMTRC1 trace (bad magic {:02x?})", m)
            }
            TraceError::BadKind(b) => write!(f, "invalid access kind byte {b}"),
            TraceError::TooLarge(n) => {
                write!(f, "trace declares {n} records, too large for this platform")
            }
        }
    }
}

impl Error for TraceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

impl From<TraceError> for io::Error {
    fn from(e: TraceError) -> Self {
        match e {
            TraceError::Io(inner) => inner,
            other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
        }
    }
}

impl TraceError {
    /// Whether this error denotes format corruption (as opposed to a
    /// transport failure from the underlying reader).
    pub fn is_corruption(&self) -> bool {
        !matches!(self, TraceError::Io(e) if e.kind() != io::ErrorKind::UnexpectedEof)
    }
}

/// Any error the simulator can surface, across all crates.
///
/// Scheme crates return their domain-specific family; experiment drivers
/// that mix schemes, traces, and checked mode converge on this enum.
#[derive(Debug)]
pub enum SimError {
    /// An impossible cache shape.
    Geometry(GeometryError),
    /// A scheme-specific parameter is out of its documented range.
    Config {
        /// The scheme that rejected its configuration.
        scheme: &'static str,
        /// What was wrong with it.
        detail: String,
    },
    /// A trace could not be read.
    Trace(TraceError),
    /// Checked mode caught a structural invariant violation.
    Audit(AuditError),
    /// A JSON document (experiment request, artifact) failed to parse.
    Json(JsonError),
}

impl SimError {
    /// Creates a configuration error for `scheme`.
    pub fn config(scheme: &'static str, detail: impl Into<String>) -> Self {
        SimError::Config {
            scheme,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Geometry(e) => write!(f, "geometry error: {e}"),
            SimError::Config { scheme, detail } => {
                write!(f, "invalid {scheme} configuration: {detail}")
            }
            SimError::Trace(e) => write!(f, "trace error: {e}"),
            SimError::Audit(e) => write!(f, "audit error: {e}"),
            SimError::Json(e) => write!(f, "json error: {e}"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Geometry(e) => Some(e),
            SimError::Trace(e) => Some(e),
            SimError::Audit(e) => Some(e),
            SimError::Json(e) => Some(e),
            SimError::Config { .. } => None,
        }
    }
}

impl From<GeometryError> for SimError {
    fn from(e: GeometryError) -> Self {
        SimError::Geometry(e)
    }
}

impl From<TraceError> for SimError {
    fn from(e: TraceError) -> Self {
        SimError::Trace(e)
    }
}

impl From<AuditError> for SimError {
    fn from(e: AuditError) -> Self {
        SimError::Audit(e)
    }
}

impl From<JsonError> for SimError {
    fn from(e: JsonError) -> Self {
        SimError::Json(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_unpunctuated() {
        for err in [
            GeometryError::SetsNotPowerOfTwo(3),
            GeometryError::LineBytesNotPowerOfTwo(7),
            GeometryError::ZeroWays,
        ] {
            let msg = err.to_string();
            assert!(!msg.is_empty());
            assert!(!msg.ends_with('.'));
            assert!(
                msg.chars().next().unwrap().is_lowercase() || msg.starts_with(char::is_numeric)
            );
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GeometryError>();
        assert_send_sync::<TraceError>();
        assert_send_sync::<SimError>();
    }

    #[test]
    fn trace_error_corruption_classification() {
        assert!(TraceError::BadMagic(*b"NOTATRCE").is_corruption());
        assert!(TraceError::BadKind(9).is_corruption());
        assert!(TraceError::TooLarge(u64::MAX).is_corruption());
        assert!(
            TraceError::Io(io::Error::new(io::ErrorKind::UnexpectedEof, "eof")).is_corruption()
        );
        assert!(
            !TraceError::Io(io::Error::new(io::ErrorKind::PermissionDenied, "no")).is_corruption()
        );
    }

    #[test]
    fn trace_error_converts_to_io_error() {
        let e: io::Error = TraceError::BadKind(7).into();
        assert_eq!(e.kind(), io::ErrorKind::InvalidData);
        let inner = io::Error::new(io::ErrorKind::PermissionDenied, "no");
        let e: io::Error = TraceError::Io(inner).into();
        assert_eq!(e.kind(), io::ErrorKind::PermissionDenied);
    }

    #[test]
    fn sim_error_wraps_every_family() {
        let from_geom: SimError = GeometryError::ZeroWays.into();
        assert!(matches!(from_geom, SimError::Geometry(_)));
        let from_trace: SimError = TraceError::BadKind(2).into();
        assert!(matches!(from_trace, SimError::Trace(_)));
        let from_json: SimError = crate::json::Json::parse("{oops").unwrap_err().into();
        assert!(matches!(from_json, SimError::Json(_)));
        assert!(from_json.to_string().contains("invalid JSON"));
        let from_audit: SimError = crate::AuditError::new("lru", "stack broken").into();
        assert!(matches!(from_audit, SimError::Audit(_)));
        let cfg = SimError::config("vway", "tag_data_ratio must be >= 1");
        assert_eq!(
            cfg.to_string(),
            "invalid vway configuration: tag_data_ratio must be >= 1"
        );
    }

    #[test]
    fn sources_chain() {
        use std::error::Error as _;
        let e = SimError::from(TraceError::BadMagic(*b"12345678"));
        assert!(e.source().is_some());
        assert!(SimError::config("sbc", "x").source().is_none());
    }
}
