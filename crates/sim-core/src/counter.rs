//! k-bit saturating counters.
//!
//! STEM's set-level capacity-demand monitor uses two 4-bit saturating
//! counters per set (`SC_S` and `SC_T`, §4.4, Table 3); SBC's saturation
//! levels and DIP's PSEL are also saturating counters, so the type lives in
//! the shared substrate.

use std::fmt;

/// An unsigned saturating counter of configurable bit width.
///
/// The counter clamps at `0` and `2^bits - 1` instead of wrapping.
///
/// # Examples
///
/// ```
/// use stem_sim_core::SaturatingCounter;
///
/// let mut sc = SaturatingCounter::new(4); // the paper's k = 4
/// assert_eq!(sc.max(), 15);
/// for _ in 0..20 { sc.increment(); }
/// assert!(sc.is_saturated());
/// assert!(sc.msb());
/// sc.reset();
/// assert_eq!(sc.value(), 0);
/// assert!(!sc.msb());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SaturatingCounter {
    value: u32,
    bits: u32,
}

impl SaturatingCounter {
    /// Creates a zeroed counter with the given bit width.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 31.
    pub fn new(bits: u32) -> Self {
        assert!((1..=31).contains(&bits), "counter width must be in 1..=31");
        SaturatingCounter { value: 0, bits }
    }

    /// Creates a counter with an initial value (clamped to the maximum).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 31.
    pub fn with_value(bits: u32, value: u32) -> Self {
        let mut c = SaturatingCounter::new(bits);
        c.value = value.min(c.max());
        c
    }

    /// The maximum representable value, `2^bits - 1`.
    #[inline]
    pub fn max(&self) -> u32 {
        (1u32 << self.bits) - 1
    }

    /// The midpoint `2^(bits-1)`, i.e. the smallest value whose MSB is set.
    #[inline]
    pub fn midpoint(&self) -> u32 {
        1u32 << (self.bits - 1)
    }

    /// Current value.
    #[inline]
    pub fn value(&self) -> u32 {
        self.value
    }

    /// Bit width.
    #[inline]
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Increments, clamping at the maximum. Returns `true` if the counter is
    /// saturated after the update.
    #[inline]
    pub fn increment(&mut self) -> bool {
        if self.value < self.max() {
            self.value += 1;
        }
        self.is_saturated()
    }

    /// Decrements, clamping at zero.
    #[inline]
    pub fn decrement(&mut self) {
        self.value = self.value.saturating_sub(1);
    }

    /// Whether the counter holds its maximum value.
    ///
    /// STEM identifies a set as a *taker* when its spatial counter
    /// saturates, and swaps a set's replacement policy when its temporal
    /// counter saturates (§4.4).
    #[inline]
    pub fn is_saturated(&self) -> bool {
        self.value == self.max()
    }

    /// The most significant bit.
    ///
    /// STEM identifies a set as a *giver* when the MSB of its spatial
    /// counter is 0 (§4.4), and a giver may receive foreign blocks only
    /// while this bit stays 0 (§4.6).
    #[inline]
    pub fn msb(&self) -> bool {
        self.value >= self.midpoint()
    }

    /// Resets to zero.
    #[inline]
    pub fn reset(&mut self) {
        self.value = 0;
    }

    /// Sets the value, clamping to the representable range.
    #[inline]
    pub fn set(&mut self, value: u32) {
        self.value = value.min(self.max());
    }
}

impl Default for SaturatingCounter {
    /// A 4-bit counter, the paper's `k = 4` (Table 3).
    fn default() -> Self {
        SaturatingCounter::new(4)
    }
}

impl fmt::Display for SaturatingCounter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.value, self.max())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamps_at_bounds() {
        let mut c = SaturatingCounter::new(2);
        c.decrement();
        assert_eq!(c.value(), 0);
        for _ in 0..10 {
            c.increment();
        }
        assert_eq!(c.value(), 3);
        assert!(c.is_saturated());
    }

    #[test]
    fn msb_threshold_is_midpoint() {
        let mut c = SaturatingCounter::new(4);
        for _ in 0..7 {
            c.increment();
        }
        assert!(!c.msb());
        c.increment(); // 8 = midpoint of 4-bit counter
        assert!(c.msb());
    }

    #[test]
    fn increment_reports_saturation() {
        let mut c = SaturatingCounter::new(1);
        assert!(c.increment()); // 1-bit counter saturates at 1
        assert!(c.increment());
    }

    #[test]
    fn with_value_clamps() {
        let c = SaturatingCounter::with_value(3, 100);
        assert_eq!(c.value(), 7);
    }

    #[test]
    fn set_clamps() {
        let mut c = SaturatingCounter::new(4);
        c.set(99);
        assert_eq!(c.value(), 15);
        c.set(3);
        assert_eq!(c.value(), 3);
    }

    #[test]
    #[should_panic(expected = "counter width")]
    fn zero_width_panics() {
        let _ = SaturatingCounter::new(0);
    }

    #[test]
    fn default_is_4_bit() {
        let c = SaturatingCounter::default();
        assert_eq!(c.bits(), 4);
        assert_eq!(c.max(), 15);
    }

    #[test]
    fn display_shows_value_and_max() {
        assert_eq!(SaturatingCounter::with_value(4, 3).to_string(), "3/15");
    }
}
