//! Physical and line-granular addresses.

use std::fmt;

/// A physical byte address.
///
/// The paper simulates the 44-bit effective physical addresses of an
/// Alpha 21264 (Table 3); this newtype keeps addresses distinct from other
/// `u64` quantities ([C-NEWTYPE]).
///
/// # Examples
///
/// ```
/// use stem_sim_core::Address;
///
/// let a = Address::new(0x1000);
/// assert_eq!(a.raw(), 0x1000);
/// assert_eq!(a.line(64).raw(), 0x40);
/// ```
///
/// [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Address(u64);

/// The number of bits in the simulated physical address space (Table 3).
pub const PHYSICAL_ADDRESS_BITS: u32 = 44;

impl Address {
    /// Creates an address from a raw byte address.
    ///
    /// Addresses are masked to the simulated 44-bit physical address space.
    #[inline]
    pub fn new(raw: u64) -> Self {
        Address(raw & ((1u64 << PHYSICAL_ADDRESS_BITS) - 1))
    }

    /// Returns the raw byte address.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Returns the line-granular address for a cache with `line_bytes`-byte
    /// lines.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `line_bytes` is not a power of two.
    #[inline]
    pub fn line(self, line_bytes: u64) -> LineAddr {
        debug_assert!(line_bytes.is_power_of_two());
        LineAddr(self.0 >> line_bytes.trailing_zeros())
    }
}

impl From<u64> for Address {
    fn from(raw: u64) -> Self {
        Address::new(raw)
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

/// A line-granular address: a byte address with the intra-line offset
/// stripped.
///
/// Two byte addresses within the same cache line map to equal `LineAddr`s,
/// which is the granularity every scheme in this workspace operates at.
///
/// # Examples
///
/// ```
/// use stem_sim_core::{Address, LineAddr};
///
/// let a = Address::new(0x1004).line(64);
/// let b = Address::new(0x103f).line(64);
/// assert_eq!(a, b);
/// assert_eq!(a, LineAddr::new(0x40));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Creates a line address directly from a line number.
    #[inline]
    pub fn new(line_number: u64) -> Self {
        LineAddr(line_number)
    }

    /// Returns the raw line number.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Converts back to the byte address of the first byte of the line.
    #[inline]
    pub fn to_address(self, line_bytes: u64) -> Address {
        debug_assert!(line_bytes.is_power_of_two());
        Address::new(self.0 << line_bytes.trailing_zeros())
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn address_masks_to_44_bits() {
        let a = Address::new(u64::MAX);
        assert_eq!(a.raw(), (1u64 << 44) - 1);
    }

    #[test]
    fn line_strips_offset() {
        let a = Address::new(0x1fff);
        assert_eq!(a.line(64).raw(), 0x1fff >> 6);
        assert_eq!(a.line(64), Address::new(0x1fc0).line(64));
        assert_ne!(a.line(64), Address::new(0x2000).line(64));
    }

    #[test]
    fn line_roundtrips_to_line_start() {
        let a = Address::new(0x1234_5678);
        let line = a.line(64);
        assert_eq!(line.to_address(64).raw(), 0x1234_5678 & !63);
    }

    #[test]
    fn from_u64_matches_new() {
        assert_eq!(Address::from(42u64), Address::new(42));
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(Address::new(0xff).to_string(), "0xff");
        assert_eq!(format!("{:x}", Address::new(0xff)), "ff");
        assert_eq!(format!("{:X}", Address::new(0xff)), "FF");
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", Address::default()).is_empty());
        assert!(!format!("{:?}", LineAddr::default()).is_empty());
    }
}
