//! Checked simulation mode: structural invariant auditing for cache models.
//!
//! Every scheme in the workspace maintains internal bookkeeping that the
//! end-metric tests cannot see — recency stacks, V-Way forward/reverse
//! pointers, SBC/STEM saturating counters, shadow tag sets. This module
//! defines the [`InvariantAuditor`] trait those schemes implement so a
//! simulation can be run in *checked mode*: the auditor re-derives the
//! structural invariants from scratch after every access (or at a
//! configurable stride) and fails loudly the moment the state corrupts,
//! instead of letting a silent bookkeeping bug skew published metrics.
//!
//! # Examples
//!
//! ```no_run
//! use stem_sim_core::{run_audited, AuditedCacheModel, Trace};
//!
//! fn checked_run(cache: &mut dyn AuditedCacheModel, trace: &Trace) {
//!     // Audit every 1024 accesses plus once at the end.
//!     run_audited(cache, trace, 1024).expect("invariant violated");
//! }
//! ```

use std::error::Error;
use std::fmt;

use crate::{CacheModel, Trace};

/// A structural invariant violation detected by an [`InvariantAuditor`].
///
/// Carries the scheme name, a human-readable description of the violated
/// invariant, and — when detected mid-run by [`run_audited`] — the index of
/// the access after which the state was first observed corrupt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditError {
    /// Short name of the scheme whose state failed the audit.
    pub scheme: String,
    /// Description of the violated invariant.
    pub detail: String,
    /// Index of the access after which the violation was detected, when the
    /// audit ran inside a trace replay.
    pub access_index: Option<u64>,
}

impl AuditError {
    /// Creates an audit error with no access position.
    pub fn new(scheme: impl Into<String>, detail: impl Into<String>) -> Self {
        AuditError {
            scheme: scheme.into(),
            detail: detail.into(),
            access_index: None,
        }
    }

    /// Attaches the access index at which the violation surfaced.
    #[must_use]
    pub fn at_access(mut self, index: u64) -> Self {
        self.access_index = Some(index);
        self
    }
}

impl fmt::Display for AuditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.access_index {
            Some(i) => write!(
                f,
                "[{}] invariant violated after access {}: {}",
                self.scheme, i, self.detail
            ),
            None => write!(f, "[{}] invariant violated: {}", self.scheme, self.detail),
        }
    }
}

impl Error for AuditError {}

/// A cache whose internal structural invariants can be re-derived and
/// verified on demand.
///
/// Implementations must not mutate observable state: `audit` is a pure
/// check, safe to call at any access boundary.
pub trait InvariantAuditor {
    /// Verifies every structural invariant of the current state.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant found.
    fn audit(&self) -> Result<(), AuditError>;
}

/// A cache model that also supports checked-mode auditing.
///
/// Blanket-implemented for every `CacheModel + InvariantAuditor`, so
/// experiment code can hold `Box<dyn AuditedCacheModel>` and run either
/// plain or checked simulations from the same object.
pub trait AuditedCacheModel: CacheModel + InvariantAuditor {}

impl<T: CacheModel + InvariantAuditor + ?Sized> AuditedCacheModel for T {}

/// Replays `trace` through `cache`, auditing as it goes.
///
/// With `stride == 0` the audit runs only once, after the final access.
/// With `stride == n` it additionally runs after every `n`-th access. A
/// stride of 1 is the paper-grade paranoid mode: every access boundary is
/// checked.
///
/// # Errors
///
/// Returns the first invariant violation, tagged with the index of the
/// access after which it was detected.
pub fn run_audited(
    cache: &mut (impl AuditedCacheModel + ?Sized),
    trace: &Trace,
    stride: u64,
) -> Result<(), AuditError> {
    let mut index: u64 = 0;
    for a in trace {
        cache.access(a.addr, a.kind);
        index += 1;
        if stride != 0 && index.is_multiple_of(stride) {
            cache.audit().map_err(|e| e.at_access(index - 1))?;
        }
    }
    if index == 0 || stride == 0 || !index.is_multiple_of(stride) {
        cache.audit().map_err(|e| {
            if index == 0 {
                e
            } else {
                e.at_access(index - 1)
            }
        })?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Access, AccessKind, AccessResult, Address, CacheGeometry, CacheStats};

    /// A cache that corrupts itself after a fixed number of accesses.
    struct FragileCache {
        stats: CacheStats,
        geom: CacheGeometry,
        accesses_until_corrupt: u64,
        seen: u64,
    }

    impl FragileCache {
        fn new(accesses_until_corrupt: u64) -> Self {
            FragileCache {
                stats: CacheStats::default(),
                geom: CacheGeometry::micro2010_l2(),
                accesses_until_corrupt,
                seen: 0,
            }
        }
    }

    impl CacheModel for FragileCache {
        fn access(&mut self, _addr: Address, _kind: AccessKind) -> AccessResult {
            self.seen += 1;
            self.stats.record_local_miss();
            AccessResult::MissLocal
        }
        fn stats(&self) -> &CacheStats {
            &self.stats
        }
        fn stats_mut(&mut self) -> &mut CacheStats {
            &mut self.stats
        }
        fn geometry(&self) -> CacheGeometry {
            self.geom
        }
        fn name(&self) -> &str {
            "fragile"
        }
    }

    impl InvariantAuditor for FragileCache {
        fn audit(&self) -> Result<(), AuditError> {
            if self.seen >= self.accesses_until_corrupt {
                Err(AuditError::new("fragile", "state corrupted"))
            } else {
                Ok(())
            }
        }
    }

    fn trace(n: u64) -> Trace {
        (0..n).map(|i| Access::read(Address::new(i * 64))).collect()
    }

    #[test]
    fn healthy_run_passes_at_any_stride() {
        for stride in [0, 1, 3, 100] {
            let mut c = FragileCache::new(u64::MAX);
            run_audited(&mut c, &trace(10), stride).unwrap();
            assert_eq!(c.stats().accesses(), 10);
        }
    }

    #[test]
    fn stride_one_pinpoints_the_corrupting_access() {
        let mut c = FragileCache::new(5);
        let err = run_audited(&mut c, &trace(10), 1).unwrap_err();
        assert_eq!(err.access_index, Some(4));
    }

    #[test]
    fn coarse_stride_detects_later_but_still_detects() {
        let mut c = FragileCache::new(5);
        let err = run_audited(&mut c, &trace(10), 4).unwrap_err();
        assert_eq!(err.access_index, Some(7));
    }

    #[test]
    fn stride_zero_audits_only_at_the_end() {
        let mut c = FragileCache::new(5);
        let err = run_audited(&mut c, &trace(10), 0).unwrap_err();
        assert_eq!(err.access_index, Some(9));
    }

    #[test]
    fn empty_trace_still_audits_final_state() {
        let mut c = FragileCache::new(0); // corrupt from the start
        let err = run_audited(&mut c, &trace(0), 1).unwrap_err();
        assert_eq!(err.access_index, None);
    }

    #[test]
    fn no_double_audit_when_stride_divides_length() {
        // length 8, stride 4: audits at 4 and 8 — the final-audit branch
        // must not fire a third time (pure check, but the error index
        // proves which branch produced it).
        let mut c = FragileCache::new(9);
        run_audited(&mut c, &trace(8), 4).unwrap();
    }

    #[test]
    fn display_formats() {
        let e = AuditError::new("vway", "reverse pointer broken");
        assert_eq!(
            e.to_string(),
            "[vway] invariant violated: reverse pointer broken"
        );
        let e = e.at_access(42);
        assert_eq!(
            e.to_string(),
            "[vway] invariant violated after access 42: reverse pointer broken"
        );
    }

    #[test]
    fn trait_objects_upcast_and_run() {
        let mut boxed: Box<dyn AuditedCacheModel> = Box::new(FragileCache::new(u64::MAX));
        run_audited(boxed.as_mut(), &trace(3), 1).unwrap();
        assert_eq!(boxed.stats().accesses(), 3);
    }
}
