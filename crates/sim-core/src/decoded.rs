//! Pre-decoded structure-of-arrays access streams.
//!
//! Decoding an [`Access`](crate::Access) against a [`CacheGeometry`] —
//! stripping the intra-line offset, extracting the set index — is pure
//! arithmetic, yet the experiment drivers historically repeated it once per
//! *scheme*: the six cells of a benchmark row each re-derived the same set
//! indices from the same byte addresses. A [`DecodedTrace`] performs that
//! decode exactly once and stores the results as parallel arrays
//! (contiguous `u32` set indices, `u64` line addresses, bit-packed write
//! flags, and `u32` instruction gaps) that every scheme can replay directly,
//! shared across worker threads via `Arc`.
//!
//! The decode is a pure representation change: replaying a `DecodedTrace`
//! through a scheme produces exactly the per-access outcomes of feeding the
//! original `Trace` through [`CacheModel::access`](crate::CacheModel::access)
//! (see `replay_decoded` on [`CacheModel`](crate::CacheModel)).
//!
//! # Examples
//!
//! ```
//! use stem_sim_core::{Access, Address, CacheGeometry, DecodedTrace, Trace};
//!
//! let geom = CacheGeometry::micro2010_l2();
//! let trace: Trace = (0..4u64).map(|i| Access::read(Address::new(i * 64))).collect();
//! let decoded = DecodedTrace::decode(&trace, geom);
//! assert_eq!(decoded.len(), 4);
//! assert_eq!(decoded.get(3).set, 3);
//! assert_eq!(decoded.get(3).line.raw(), 3);
//! ```

use std::ops::Range;

use crate::{Access, AccessKind, Address, CacheGeometry, LineAddr, Trace};

/// One access of a [`DecodedTrace`]: the set index and line address are
/// already extracted, so schemes sharing the decode geometry can probe
/// their tag store without touching the byte address at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DecodedAccess {
    /// Set index under the decode geometry (`set_index_of_line(line)`).
    pub set: u32,
    /// The line address (byte address with the intra-line offset stripped).
    pub line: LineAddr,
    /// Whether the access is a store.
    pub write: bool,
    /// Instructions retired since the previous access.
    pub inst_gap: u32,
}

impl DecodedAccess {
    /// The access kind this decoded record represents.
    #[inline]
    pub fn kind(self) -> AccessKind {
        if self.write {
            AccessKind::Write
        } else {
            AccessKind::Read
        }
    }

    /// Reconstructs the (line-aligned) byte address for `line_bytes`-byte
    /// lines. The intra-line offset of the original access is not retained —
    /// every consumer in this workspace is offset-invariant, operating at
    /// line granularity.
    #[inline]
    pub fn address(self, line_bytes: u64) -> Address {
        self.line.to_address(line_bytes)
    }
}

/// A structure-of-arrays view of a `(Trace, CacheGeometry)` pair, decoded
/// once and replayed many times.
///
/// The columns are parallel arrays indexed by access position:
///
/// * `sets[i]` — the set index of access `i` under the decode geometry;
/// * `lines[i]` — the raw line address, which is exactly the tag word the
///   line-addressed schemes (SBC, static SBC, victim, V-Way, STEM) store in
///   their [`SetFrames`](crate::SetFrames); the classic set-associative
///   cache derives its narrower tag with a single shift;
/// * bit-packed write flags (one bit per access, 64 per word);
/// * `inst_gaps[i]` — the instruction gap, for MPKI/CPI accounting.
///
/// Replay validity is governed by [`compatible_with`]
/// (set count and line size; associativity is deliberately excluded so one
/// decode serves a whole constant-capacity associativity sweep).
///
/// [`compatible_with`]: DecodedTrace::compatible_with
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedTrace {
    geom: CacheGeometry,
    sets: Vec<u32>,
    lines: Vec<u64>,
    write_words: Vec<u64>,
    inst_gaps: Vec<u32>,
    /// `inst_prefix[i]` = instructions of accesses `0..i`; one entry per
    /// access plus a leading zero, so any range query is two lookups.
    inst_prefix: Vec<u64>,
    instructions: u64,
}

impl DecodedTrace {
    /// Decodes every access of `trace` against `geom` in one pass.
    ///
    /// # Panics
    ///
    /// Panics if `geom` has more than `u32::MAX` sets (far beyond any
    /// simulated geometry; set indices are stored as `u32`).
    pub fn decode(trace: &Trace, geom: CacheGeometry) -> Self {
        assert!(
            geom.sets() as u64 <= u64::from(u32::MAX),
            "set indices are stored as u32"
        );
        let n = trace.len();
        let mut sets = Vec::with_capacity(n);
        let mut lines = Vec::with_capacity(n);
        let mut write_words = vec![0u64; n.div_ceil(64)];
        let mut inst_gaps = Vec::with_capacity(n);
        let line_bytes = geom.line_bytes();
        let mut inst_prefix = Vec::with_capacity(n + 1);
        inst_prefix.push(0u64);
        let mut running = 0u64;
        for (i, a) in trace.iter().enumerate() {
            let line = a.addr.line(line_bytes);
            sets.push(geom.set_index_of_line(line) as u32);
            lines.push(line.raw());
            if a.kind.is_write() {
                write_words[i >> 6] |= 1u64 << (i & 63);
            }
            inst_gaps.push(a.inst_gap);
            running += u64::from(a.inst_gap);
            inst_prefix.push(running);
        }
        DecodedTrace {
            geom,
            sets,
            lines,
            write_words,
            inst_gaps,
            inst_prefix,
            instructions: trace.instructions(),
        }
    }

    /// Assembles a `DecodedTrace` directly from pre-decoded columns, used by
    /// the shard builder to materialize compacted per-shard streams without
    /// round-tripping through byte addresses. The columns must be parallel
    /// (`sets`, `lines`, `inst_gaps` of equal length; `write_words` packed 64
    /// flags per word) and every set index must be below `geom.sets()`.
    pub(crate) fn from_parts(
        geom: CacheGeometry,
        sets: Vec<u32>,
        lines: Vec<u64>,
        write_words: Vec<u64>,
        inst_gaps: Vec<u32>,
    ) -> Self {
        let n = sets.len();
        debug_assert_eq!(lines.len(), n);
        debug_assert_eq!(inst_gaps.len(), n);
        debug_assert_eq!(write_words.len(), n.div_ceil(64));
        debug_assert!(sets.iter().all(|&s| (s as usize) < geom.sets()));
        let mut inst_prefix = Vec::with_capacity(n + 1);
        inst_prefix.push(0u64);
        let mut running = 0u64;
        for &g in &inst_gaps {
            running += u64::from(g);
            inst_prefix.push(running);
        }
        DecodedTrace {
            geom,
            sets,
            lines,
            write_words,
            inst_gaps,
            inst_prefix,
            instructions: running,
        }
    }

    /// The geometry the trace was decoded against.
    #[inline]
    pub fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    /// Number of accesses.
    #[inline]
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// Whether the trace is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// Total instructions represented (the sum of all instruction gaps).
    /// O(1): carried over from the source trace at decode time.
    #[inline]
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Instructions represented by the accesses in `range`. O(1): answered
    /// from the prefix-sum built at decode time, so per-shard and per-range
    /// IPC accounting never rescans the gap column.
    ///
    /// # Panics
    ///
    /// Panics if `range` is out of bounds.
    pub fn instructions_in(&self, range: Range<usize>) -> u64 {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "instructions_in range {}..{} out of bounds for length {}",
            range.start,
            range.end,
            self.len()
        );
        self.inst_prefix[range.end] - self.inst_prefix[range.start]
    }

    /// Whether a cache of geometry `geom` may consume the pre-extracted
    /// `set`/`line` columns directly: the set count and line size must match
    /// the decode geometry. Associativity is irrelevant to address decode,
    /// so one `DecodedTrace` covers every point of an associativity sweep
    /// that holds the set count and line size fixed (Fig. 3 / Fig. 10).
    #[inline]
    pub fn compatible_with(&self, geom: CacheGeometry) -> bool {
        geom.sets() == self.geom.sets() && geom.line_bytes() == self.geom.line_bytes()
    }

    /// The decoded access at position `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn get(&self, i: usize) -> DecodedAccess {
        DecodedAccess {
            set: self.sets[i],
            line: LineAddr::new(self.lines[i]),
            write: self.is_write(i),
            inst_gap: self.inst_gaps[i],
        }
    }

    /// Whether access `i` is a write.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn is_write(&self, i: usize) -> bool {
        debug_assert!(i < self.len());
        (self.write_words[i >> 6] >> (i & 63)) & 1 != 0
    }

    /// The raw set-index column.
    #[inline]
    pub fn set_indices(&self) -> &[u32] {
        &self.sets
    }

    /// The raw line-address column.
    #[inline]
    pub fn line_addrs(&self) -> &[u64] {
        &self.lines
    }

    /// The raw instruction-gap column.
    #[inline]
    pub fn inst_gaps(&self) -> &[u32] {
        &self.inst_gaps
    }

    /// Iterates over all decoded accesses in order.
    pub fn iter(&self) -> DecodedIter<'_> {
        self.iter_range(0..self.len())
    }

    /// Iterates over the decoded accesses in `range`.
    ///
    /// # Panics
    ///
    /// Panics if `range` is out of bounds.
    pub fn iter_range(&self, range: Range<usize>) -> DecodedIter<'_> {
        assert!(range.start <= range.end && range.end <= self.len());
        DecodedIter {
            trace: self,
            idx: range.start,
            end: range.end,
        }
    }

    /// Re-materializes the access at `i` as an [`Access`] record with a
    /// line-aligned byte address (the representation `CacheModel::access`
    /// consumes). Used by the differential tests and fallback paths.
    pub fn to_access(&self, i: usize) -> Access {
        let a = self.get(i);
        Access {
            addr: a.address(self.geom.line_bytes()),
            kind: a.kind(),
            inst_gap: a.inst_gap,
        }
    }
}

/// Iterator over a [`DecodedTrace`] (or a sub-range of one).
#[derive(Debug, Clone)]
pub struct DecodedIter<'a> {
    trace: &'a DecodedTrace,
    idx: usize,
    end: usize,
}

impl Iterator for DecodedIter<'_> {
    type Item = DecodedAccess;

    #[inline]
    fn next(&mut self) -> Option<DecodedAccess> {
        if self.idx < self.end {
            let a = self.trace.get(self.idx);
            self.idx += 1;
            Some(a)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.end - self.idx;
        (n, Some(n))
    }
}

impl ExactSizeIterator for DecodedIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SplitMix64;

    fn geom() -> CacheGeometry {
        CacheGeometry::new(8, 4, 64).unwrap()
    }

    fn mixed_trace(n: usize) -> Trace {
        let mut rng = SplitMix64::new(7);
        let mut t = Trace::with_capacity(n);
        for i in 0..n {
            let addr = Address::new(rng.next_u64() % (1 << 20));
            let a = if i % 3 == 0 {
                Access::write(addr)
            } else {
                Access::read(addr)
            };
            t.push(a.with_inst_gap((i % 5 + 1) as u32));
        }
        t
    }

    #[test]
    fn decode_matches_per_access_derivation() {
        let g = geom();
        let t = mixed_trace(300);
        let d = DecodedTrace::decode(&t, g);
        assert_eq!(d.len(), t.len());
        assert_eq!(d.instructions(), t.instructions());
        for (i, a) in t.iter().enumerate() {
            let da = d.get(i);
            let line = a.addr.line(g.line_bytes());
            assert_eq!(da.line, line);
            assert_eq!(da.set as usize, g.set_index_of_line(line));
            assert_eq!(da.write, a.kind.is_write());
            assert_eq!(da.kind(), a.kind);
            assert_eq!(da.inst_gap, a.inst_gap);
            assert_eq!(d.is_write(i), a.kind.is_write());
        }
    }

    #[test]
    fn to_access_is_line_aligned_round_trip() {
        let g = geom();
        let t = mixed_trace(100);
        let d = DecodedTrace::decode(&t, g);
        for (i, a) in t.iter().enumerate() {
            let r = d.to_access(i);
            assert_eq!(r.addr.line(g.line_bytes()), a.addr.line(g.line_bytes()));
            assert_eq!(r.addr.raw() % g.line_bytes(), 0);
            assert_eq!(r.kind, a.kind);
            assert_eq!(r.inst_gap, a.inst_gap);
        }
    }

    #[test]
    fn iter_and_ranges() {
        let g = geom();
        let t = mixed_trace(130); // crosses a write-word boundary
        let d = DecodedTrace::decode(&t, g);
        let all: Vec<DecodedAccess> = d.iter().collect();
        assert_eq!(all.len(), 130);
        let mid: Vec<DecodedAccess> = d.iter_range(40..90).collect();
        assert_eq!(mid.len(), 50);
        assert_eq!(mid[0], all[40]);
        assert_eq!(mid[49], all[89]);
        assert_eq!(d.iter_range(0..0).count(), 0);
        assert_eq!(d.iter().size_hint(), (130, Some(130)));
    }

    #[test]
    fn instructions_in_matches_slice_sum() {
        let g = geom();
        let t = mixed_trace(64);
        let d = DecodedTrace::decode(&t, g);
        assert_eq!(d.instructions_in(0..d.len()), d.instructions());
        let manual: u64 = t.as_slice()[10..50]
            .iter()
            .map(|a| u64::from(a.inst_gap))
            .sum();
        assert_eq!(d.instructions_in(10..50), manual);
        assert_eq!(d.instructions_in(5..5), 0);
    }

    #[test]
    fn compatibility_ignores_ways_only() {
        let g = CacheGeometry::new(2048, 16, 64).unwrap();
        let d = DecodedTrace::decode(&Trace::new(), g);
        assert!(d.compatible_with(g));
        assert!(d.compatible_with(CacheGeometry::new(2048, 4, 64).unwrap()));
        assert!(d.compatible_with(CacheGeometry::new(2048, 32, 64).unwrap()));
        assert!(!d.compatible_with(CacheGeometry::new(1024, 16, 64).unwrap()));
        assert!(!d.compatible_with(CacheGeometry::new(2048, 16, 32).unwrap()));
    }

    #[test]
    fn empty_trace_decodes_empty() {
        let d = DecodedTrace::decode(&Trace::new(), geom());
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
        assert_eq!(d.instructions(), 0);
        assert_eq!(d.iter().count(), 0);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_range_panics() {
        let d = DecodedTrace::decode(&mixed_trace(4), geom());
        let _ = d.iter_range(2..9);
    }

    #[test]
    #[should_panic]
    fn instructions_in_out_of_bounds_panics() {
        let d = DecodedTrace::decode(&mixed_trace(4), geom());
        let _ = d.instructions_in(2..9);
    }

    #[test]
    fn instructions_in_is_prefix_sum_backed() {
        let g = geom();
        let t = mixed_trace(257); // crosses several prefix entries
        let d = DecodedTrace::decode(&t, g);
        for (start, end) in [(0, 257), (0, 0), (256, 257), (63, 65), (100, 200)] {
            let manual: u64 = t.as_slice()[start..end]
                .iter()
                .map(|a| u64::from(a.inst_gap))
                .sum();
            assert_eq!(d.instructions_in(start..end), manual);
        }
    }

    #[test]
    fn raw_columns_are_parallel() {
        let g = geom();
        let t = mixed_trace(70);
        let d = DecodedTrace::decode(&t, g);
        assert_eq!(d.set_indices().len(), 70);
        assert_eq!(d.line_addrs().len(), 70);
        assert_eq!(d.inst_gaps().len(), 70);
        for i in 0..70 {
            assert_eq!(d.set_indices()[i], d.get(i).set);
            assert_eq!(d.line_addrs()[i], d.get(i).line.raw());
            assert_eq!(d.inst_gaps()[i], d.get(i).inst_gap);
        }
    }
}
