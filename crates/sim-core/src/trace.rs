//! Access traces: ordered sequences of memory accesses.

use std::fmt;

use crate::{Access, CacheGeometry};

/// An ordered sequence of memory accesses driving a simulation.
///
/// A `Trace` is a thin, inspectable wrapper around `Vec<Access>`
/// ([C-NEWTYPE-HIDE] kept deliberately transparent via iteration and
/// indexing) with helpers for the statistics workload generators and
/// experiments need.
///
/// # Examples
///
/// ```
/// use stem_sim_core::{Access, Address, Trace};
///
/// let trace: Trace = (0..4u64).map(|i| Access::read(Address::new(i * 64))).collect();
/// assert_eq!(trace.len(), 4);
/// assert_eq!(trace.instructions(), 4);
/// ```
///
/// [C-NEWTYPE-HIDE]: https://rust-lang.github.io/api-guidelines/future-proofing.html
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    accesses: Vec<Access>,
    /// Running sum of instruction gaps, maintained on every construction
    /// path so [`instructions`](Trace::instructions) is O(1). Always equal
    /// to the sum over `accesses` (so the derived equality stays a pure
    /// function of the access sequence).
    instructions: u64,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace {
            accesses: Vec::new(),
            instructions: 0,
        }
    }

    /// Creates an empty trace with room for `capacity` accesses.
    pub fn with_capacity(capacity: usize) -> Self {
        Trace {
            accesses: Vec::with_capacity(capacity),
            instructions: 0,
        }
    }

    /// Appends an access.
    #[inline]
    pub fn push(&mut self, access: Access) {
        self.instructions += u64::from(access.inst_gap);
        self.accesses.push(access);
    }

    /// Number of accesses.
    #[inline]
    pub fn len(&self) -> usize {
        self.accesses.len()
    }

    /// Whether the trace is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.accesses.is_empty()
    }

    /// Total instructions represented (the sum of instruction gaps).
    ///
    /// O(1): the sum is maintained incrementally as the trace is built.
    #[inline]
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Iterates over the accesses.
    pub fn iter(&self) -> std::slice::Iter<'_, Access> {
        self.accesses.iter()
    }

    /// The accesses as a slice.
    pub fn as_slice(&self) -> &[Access] {
        &self.accesses
    }

    /// Consumes the trace, returning the underlying accesses.
    pub fn into_inner(self) -> Vec<Access> {
        self.accesses
    }

    /// Concatenates another trace onto this one.
    pub fn append(&mut self, mut other: Trace) {
        self.instructions += other.instructions;
        self.accesses.append(&mut other.accesses);
        other.instructions = 0;
    }

    /// Computes summary statistics relative to a cache geometry (which
    /// determines the set-index mapping). Single pass over the trace.
    pub fn stats(&self, geom: CacheGeometry) -> TraceStats {
        let mut touched = vec![false; geom.sets()];
        let mut writes = 0u64;
        for a in &self.accesses {
            touched[geom.set_index(a.addr)] = true;
            if a.kind.is_write() {
                writes += 1;
            }
        }
        TraceStats {
            accesses: self.len() as u64,
            instructions: self.instructions,
            writes,
            sets_touched: touched.iter().filter(|&&t| t).count(),
        }
    }
}

impl FromIterator<Access> for Trace {
    fn from_iter<I: IntoIterator<Item = Access>>(iter: I) -> Self {
        let accesses: Vec<Access> = iter.into_iter().collect();
        let instructions = accesses.iter().map(|a| u64::from(a.inst_gap)).sum();
        Trace {
            accesses,
            instructions,
        }
    }
}

impl Extend<Access> for Trace {
    fn extend<I: IntoIterator<Item = Access>>(&mut self, iter: I) {
        let instructions = &mut self.instructions;
        self.accesses.extend(iter.into_iter().inspect(|a| {
            *instructions += u64::from(a.inst_gap);
        }));
    }
}

impl IntoIterator for Trace {
    type Item = Access;
    type IntoIter = std::vec::IntoIter<Access>;

    fn into_iter(self) -> Self::IntoIter {
        self.accesses.into_iter()
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a Access;
    type IntoIter = std::slice::Iter<'a, Access>;

    fn into_iter(self) -> Self::IntoIter {
        self.accesses.iter()
    }
}

impl From<Vec<Access>> for Trace {
    fn from(accesses: Vec<Access>) -> Self {
        let instructions = accesses.iter().map(|a| u64::from(a.inst_gap)).sum();
        Trace {
            accesses,
            instructions,
        }
    }
}

/// Summary statistics of a trace under a particular geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceStats {
    /// Total number of accesses.
    pub accesses: u64,
    /// Total instructions represented.
    pub instructions: u64,
    /// Number of write accesses.
    pub writes: u64,
    /// Number of distinct cache sets touched.
    pub sets_touched: usize,
}

impl fmt::Display for TraceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} accesses ({} writes) over {} instructions touching {} sets",
            self.accesses, self.writes, self.instructions, self.sets_touched
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AccessKind, Address};

    fn trace_of(addrs: &[u64]) -> Trace {
        addrs
            .iter()
            .map(|&a| Access::read(Address::new(a)))
            .collect()
    }

    #[test]
    fn collect_and_len() {
        let t = trace_of(&[0, 64, 128]);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert!(Trace::new().is_empty());
    }

    #[test]
    fn instructions_sums_gaps() {
        let mut t = Trace::new();
        t.push(Access::read(Address::new(0)).with_inst_gap(10));
        t.push(Access::write(Address::new(64)).with_inst_gap(5));
        assert_eq!(t.instructions(), 15);
    }

    #[test]
    fn stats_counts_sets_and_writes() {
        let geom = CacheGeometry::new(4, 2, 64).unwrap();
        let mut t = trace_of(&[0, 64, 64, 0]);
        t.push(Access::write(Address::new(128)));
        let s = t.stats(geom);
        assert_eq!(s.accesses, 5);
        assert_eq!(s.writes, 1);
        assert_eq!(s.sets_touched, 3); // sets 0, 1, 2
        assert!(!s.to_string().is_empty());
    }

    #[test]
    fn append_and_extend() {
        let mut a = trace_of(&[0]);
        a.append(trace_of(&[64]));
        a.extend(trace_of(&[128]));
        assert_eq!(a.len(), 3);
    }

    /// The memoized instruction count agrees with a full re-scan after any
    /// mix of construction paths (push/append/extend/collect/From<Vec>).
    #[test]
    fn memoized_instructions_match_rescan() {
        let gap = |t: &Trace| -> u64 { t.iter().map(|a| u64::from(a.inst_gap)).sum() };
        let mut t = Trace::new();
        t.push(Access::read(Address::new(0)).with_inst_gap(7));
        assert_eq!(t.instructions(), gap(&t));

        let other: Trace = (0..5u64)
            .map(|i| Access::read(Address::new(i * 64)).with_inst_gap(i as u32))
            .collect();
        assert_eq!(other.instructions(), gap(&other));

        t.append(other);
        assert_eq!(t.instructions(), gap(&t));

        t.extend((0..3u64).map(|i| Access::write(Address::new(i)).with_inst_gap(2)));
        assert_eq!(t.instructions(), gap(&t));

        let from_vec = Trace::from(vec![
            Access::read(Address::new(0)).with_inst_gap(9),
            Access::write(Address::new(64)).with_inst_gap(1),
        ]);
        assert_eq!(from_vec.instructions(), gap(&from_vec));
        assert_eq!(from_vec.instructions(), 10);

        // Equality remains a pure function of the access sequence.
        let rebuilt: Trace = t.iter().copied().collect();
        assert_eq!(rebuilt, t);
    }

    #[test]
    fn iteration_orders_preserved() {
        let t = trace_of(&[0, 64, 128]);
        let raws: Vec<u64> = t.iter().map(|a| a.addr.raw()).collect();
        assert_eq!(raws, vec![0, 64, 128]);
        let owned: Vec<Access> = t.clone().into_iter().collect();
        assert_eq!(owned.len(), 3);
        assert_eq!(t.as_slice()[1].kind, AccessKind::Read);
    }
}
