//! Flat structure-of-arrays tag storage shared by every scheme's set frames.
//!
//! Every cache in the workspace used to keep its sets as
//! `Vec<Vec<Option<Line>>>`: one heap allocation per set, a pointer
//! indirection per probe, and an `Option`-unwrapping scan per lookup. A
//! [`SetFrames`] replaces that nest with three contiguous arrays sized
//! `sets × ways` in a single allocation each:
//!
//! * one `u64` **tag word** per frame (a tag, a line address — whatever the
//!   scheme matches on), with invalid frames parked at a sentinel so the
//!   probe loop is a branch-free compare over a contiguous stride;
//! * bit-packed **valid**, **dirty**, and **flag** words (the flag bit is
//!   the scheme-specific third state: SBC's *foreign* bit, STEM's *CC*
//!   bit), `ways.div_ceil(64)` words per set.
//!
//! The hot operations — [`find`](SetFrames::find) and
//! [`first_free`](SetFrames::first_free) — touch only the set's own stride
//! of the tag array or one or two flag words, so a 2048-set × 16-way cache
//! probes within a 256KB tag array instead of chasing 2048 separate
//! allocations.

/// Sentinel tag word marking an invalid frame.
///
/// The simulator's addresses live in a 44-bit physical space, so no real
/// tag or line address ever equals `u64::MAX`; [`SetFrames::fill`] rejects
/// it in debug builds.
const EMPTY_TAG: u64 = u64::MAX;

/// The contents of one valid frame, as returned by [`SetFrames::take`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Frame {
    /// The tag word the frame was filled with.
    pub tag: u64,
    /// The dirty bit.
    pub dirty: bool,
    /// The scheme-specific flag bit (foreign / CC).
    pub flag: bool,
}

/// A flat, structure-of-arrays tag store for `sets × ways` frames.
///
/// # Examples
///
/// ```
/// use stem_sim_core::SetFrames;
///
/// let mut f = SetFrames::new(4, 2);
/// assert_eq!(f.first_free(1), Some(0));
/// f.fill(1, 0, 0xabc, true, false);
/// assert_eq!(f.find(1, 0xabc), Some(0));
/// assert_eq!(f.first_free(1), Some(1));
/// let frame = f.take(1, 0).unwrap();
/// assert!(frame.dirty);
/// assert_eq!(f.find(1, 0xabc), None);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SetFrames {
    sets: usize,
    ways: usize,
    /// Flag words per set: `ways.div_ceil(64)`.
    words: usize,
    /// `tags[set * ways + way]`; invalid frames hold [`EMPTY_TAG`].
    tags: Vec<u64>,
    valid: Vec<u64>,
    dirty: Vec<u64>,
    flags: Vec<u64>,
}

impl SetFrames {
    /// Creates an all-invalid store for `sets × ways` frames.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `ways` is zero.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(
            sets > 0 && ways > 0,
            "SetFrames needs sets ≥ 1 and ways ≥ 1"
        );
        let words = ways.div_ceil(64);
        SetFrames {
            sets,
            ways,
            words,
            tags: vec![EMPTY_TAG; sets * ways],
            valid: vec![0; sets * words],
            dirty: vec![0; sets * words],
            flags: vec![0; sets * words],
        }
    }

    /// Number of sets.
    #[inline]
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Ways per set.
    #[inline]
    pub fn ways(&self) -> usize {
        self.ways
    }

    #[inline]
    fn word_bit(&self, set: usize, way: usize) -> (usize, u64) {
        (set * self.words + way / 64, 1u64 << (way % 64))
    }

    /// The way of `set` holding `tag`, scanning ways in ascending order.
    ///
    /// `tag` must not be the reserved sentinel (`u64::MAX`) — no 44-bit
    /// physical address produces it.
    #[inline]
    pub fn find(&self, set: usize, tag: u64) -> Option<usize> {
        debug_assert_ne!(tag, EMPTY_TAG, "the all-ones tag word is reserved");
        let base = set * self.ways;
        self.tags[base..base + self.ways]
            .iter()
            .position(|&t| t == tag)
    }

    /// The lowest invalid way of `set`, if any.
    #[inline]
    pub fn first_free(&self, set: usize) -> Option<usize> {
        let base = set * self.words;
        for w in 0..self.words {
            let occupied = self.valid[base + w];
            // Bits past `ways` in the last word are never set in `valid`,
            // so mask them out of the complement.
            let ways_here = (self.ways - w * 64).min(64);
            let mask = if ways_here == 64 {
                u64::MAX
            } else {
                (1u64 << ways_here) - 1
            };
            let free = !occupied & mask;
            if free != 0 {
                return Some(w * 64 + free.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Whether `(set, way)` holds a valid frame.
    #[inline]
    pub fn is_valid(&self, set: usize, way: usize) -> bool {
        let (w, b) = self.word_bit(set, way);
        self.valid[w] & b != 0
    }

    /// The tag word of `(set, way)`, or `None` when invalid.
    #[inline]
    pub fn tag(&self, set: usize, way: usize) -> Option<u64> {
        if self.is_valid(set, way) {
            Some(self.tags[set * self.ways + way])
        } else {
            None
        }
    }

    /// Whether `(set, way)` is valid and dirty.
    #[inline]
    pub fn is_dirty(&self, set: usize, way: usize) -> bool {
        let (w, b) = self.word_bit(set, way);
        self.dirty[w] & b != 0
    }

    /// Whether `(set, way)` is valid with the flag bit set.
    #[inline]
    pub fn is_flagged(&self, set: usize, way: usize) -> bool {
        let (w, b) = self.word_bit(set, way);
        self.flags[w] & b != 0
    }

    /// Sets the dirty bit of a valid frame.
    #[inline]
    pub fn mark_dirty(&mut self, set: usize, way: usize) {
        debug_assert!(self.is_valid(set, way), "marking an invalid frame dirty");
        let (w, b) = self.word_bit(set, way);
        self.dirty[w] |= b;
    }

    /// Fills `(set, way)` with `tag` and the given state bits, overwriting
    /// whatever was there.
    #[inline]
    pub fn fill(&mut self, set: usize, way: usize, tag: u64, dirty: bool, flag: bool) {
        debug_assert_ne!(tag, EMPTY_TAG, "the all-ones tag word is reserved");
        self.tags[set * self.ways + way] = tag;
        let (w, b) = self.word_bit(set, way);
        self.valid[w] |= b;
        if dirty {
            self.dirty[w] |= b;
        } else {
            self.dirty[w] &= !b;
        }
        if flag {
            self.flags[w] |= b;
        } else {
            self.flags[w] &= !b;
        }
    }

    /// Invalidates `(set, way)`, returning its contents, or `None` if the
    /// frame was already invalid.
    #[inline]
    pub fn take(&mut self, set: usize, way: usize) -> Option<Frame> {
        if !self.is_valid(set, way) {
            return None;
        }
        let frame = Frame {
            tag: self.tags[set * self.ways + way],
            dirty: self.is_dirty(set, way),
            flag: self.is_flagged(set, way),
        };
        self.tags[set * self.ways + way] = EMPTY_TAG;
        let (w, b) = self.word_bit(set, way);
        self.valid[w] &= !b;
        self.dirty[w] &= !b;
        self.flags[w] &= !b;
        Some(frame)
    }

    /// Number of valid frames in `set` (a popcount, no scan).
    #[inline]
    pub fn valid_count(&self, set: usize) -> usize {
        let base = set * self.words;
        self.valid[base..base + self.words]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    /// Number of valid frames in `set` with the flag bit set.
    #[inline]
    pub fn flagged_count(&self, set: usize) -> usize {
        let base = set * self.words;
        self.flags[base..base + self.words]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    /// Iterates over the valid ways of `set` in ascending order.
    pub fn valid_ways(&self, set: usize) -> impl Iterator<Item = usize> + '_ {
        let base = set * self.words;
        let words = self.words;
        (0..words).flat_map(move |w| {
            let mut bits = self.valid[base + w];
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let way = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(w * 64 + way)
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prop;

    #[test]
    fn fresh_store_is_empty() {
        let f = SetFrames::new(4, 3);
        for set in 0..4 {
            assert_eq!(f.valid_count(set), 0);
            assert_eq!(f.first_free(set), Some(0));
            assert_eq!(f.find(set, 7), None);
            assert_eq!(f.valid_ways(set).count(), 0);
        }
    }

    #[test]
    fn fill_find_take_roundtrip() {
        let mut f = SetFrames::new(2, 4);
        f.fill(0, 2, 0x99, false, true);
        assert_eq!(f.find(0, 0x99), Some(2));
        assert_eq!(f.find(1, 0x99), None);
        assert!(f.is_flagged(0, 2));
        assert!(!f.is_dirty(0, 2));
        f.mark_dirty(0, 2);
        let frame = f.take(0, 2).unwrap();
        assert_eq!(
            frame,
            Frame {
                tag: 0x99,
                dirty: true,
                flag: true
            }
        );
        assert_eq!(f.take(0, 2), None);
        assert_eq!(f.find(0, 0x99), None);
    }

    #[test]
    fn first_free_scans_in_way_order() {
        let mut f = SetFrames::new(1, 4);
        f.fill(0, 0, 1, false, false);
        f.fill(0, 1, 2, false, false);
        assert_eq!(f.first_free(0), Some(2));
        f.fill(0, 2, 3, false, false);
        f.fill(0, 3, 4, false, false);
        assert_eq!(f.first_free(0), None);
        f.take(0, 1);
        assert_eq!(f.first_free(0), Some(1));
    }

    #[test]
    fn refill_overwrites_state_bits() {
        let mut f = SetFrames::new(1, 2);
        f.fill(0, 0, 5, true, true);
        f.fill(0, 0, 6, false, false);
        assert!(!f.is_dirty(0, 0));
        assert!(!f.is_flagged(0, 0));
        assert_eq!(f.tag(0, 0), Some(6));
        assert_eq!(f.find(0, 5), None);
    }

    #[test]
    fn wide_sets_span_multiple_flag_words() {
        // 130 ways: three 64-bit flag words per set.
        let mut f = SetFrames::new(2, 130);
        f.fill(1, 0, 10, false, false);
        f.fill(1, 64, 11, true, false);
        f.fill(1, 129, 12, false, true);
        assert_eq!(f.find(1, 11), Some(64));
        assert_eq!(f.find(1, 12), Some(129));
        assert_eq!(f.valid_count(1), 3);
        assert_eq!(f.flagged_count(1), 1);
        assert_eq!(f.valid_ways(1).collect::<Vec<_>>(), vec![0, 64, 129]);
        assert_eq!(f.first_free(1), Some(1));
        assert!(f.is_dirty(1, 64));
        // Set 0 is untouched.
        assert_eq!(f.valid_count(0), 0);
    }

    /// SetFrames agrees with a `Vec<Vec<Option<(u64, bool, bool)>>>` model
    /// under arbitrary fill/take/mark sequences.
    #[test]
    fn matches_nested_vec_model() {
        prop::check(128, |g| {
            let sets = g.usize(1, 4);
            let ways = g.usize(1, 9);
            let mut f = SetFrames::new(sets, ways);
            let mut model: Vec<Vec<Option<(u64, bool, bool)>>> = vec![vec![None; ways]; sets];
            for _ in 0..g.usize(0, 200) {
                let set = g.usize(0, sets);
                let way = g.usize(0, ways);
                match g.u8(0, 4) {
                    0 => {
                        let tag = g.u64(0, 50);
                        let (d, fl) = (g.bool(), g.bool());
                        f.fill(set, way, tag, d, fl);
                        model[set][way] = Some((tag, d, fl));
                    }
                    1 => {
                        let got = f.take(set, way);
                        let want = model[set][way].take().map(|(tag, dirty, flag)| Frame {
                            tag,
                            dirty,
                            flag,
                        });
                        assert_eq!(got, want);
                    }
                    2 => {
                        if model[set][way].is_some() {
                            f.mark_dirty(set, way);
                            model[set][way].as_mut().unwrap().1 = true;
                        }
                    }
                    _ => {
                        let tag = g.u64(0, 50);
                        let want = model[set]
                            .iter()
                            .position(|e| matches!(e, Some((t, _, _)) if *t == tag));
                        assert_eq!(f.find(set, tag), want);
                    }
                }
                // Cross-check derived views on the touched set.
                let want_free = model[set].iter().position(Option::is_none);
                assert_eq!(f.first_free(set), want_free);
                let want_valid = model[set].iter().flatten().count();
                assert_eq!(f.valid_count(set), want_valid);
                let want_flagged = model[set].iter().flatten().filter(|e| e.2).count();
                assert_eq!(f.flagged_count(set), want_flagged);
                let want_ways: Vec<usize> =
                    (0..ways).filter(|&w| model[set][w].is_some()).collect();
                assert_eq!(f.valid_ways(set).collect::<Vec<_>>(), want_ways);
            }
        });
    }
}
