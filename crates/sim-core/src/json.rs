//! A hand-rolled JSON value, writer, and strict parser.
//!
//! The workspace is hermetic (no external crates), yet three subsystems
//! speak JSON: the `BENCH_run_all.json` / `BENCH_throughput.json`
//! performance artifacts written by `stem-bench`, and the request/response
//! bodies of the `stem-serve` experiment service. This module is the one
//! serializer and parser they all share, so a response body and a bench
//! artifact are produced by the same code path.
//!
//! Determinism is a contract here, not an accident: [`Json`] objects
//! preserve insertion order (no hash-map iteration order leaks into the
//! output), floats are rendered with Rust's shortest round-trip formatting
//! (identical bits → identical bytes), and the writer emits no
//! environment-dependent content. Two structurally identical values always
//! serialize to byte-identical text.
//!
//! The parser is strict by design — it is the validation front door of the
//! serve subsystem: trailing garbage, duplicate object keys, unpaired
//! surrogates, leading zeros, and nesting beyond [`MAX_DEPTH`] are all
//! rejected with a byte offset, and every failure maps into the
//! workspace-wide [`SimError`](crate::SimError) taxonomy via
//! [`From<JsonError>`](crate::SimError).
//!
//! # Examples
//!
//! ```
//! use stem_sim_core::json::Json;
//!
//! let value = Json::Obj(vec![
//!     ("scheme".to_owned(), Json::Str("STEM".to_owned())),
//!     ("mpki".to_owned(), Json::Float(3.25)),
//! ]);
//! let text = value.to_string();
//! assert_eq!(text, r#"{"scheme":"STEM","mpki":3.25}"#);
//! assert_eq!(Json::parse(&text).unwrap(), value);
//! ```

use std::error::Error;
use std::fmt;

/// Maximum nesting depth the parser accepts (arrays and objects combined).
/// Deeper documents are malformed input, not a stack-overflow vector.
pub const MAX_DEPTH: usize = 64;

/// A JSON document: the seven shapes of RFC 8259, with numbers split into
/// lossless integers and floats.
///
/// Objects are ordered pair lists, not maps — insertion order is exactly
/// serialization order, which keeps every emitted artifact byte-stable.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number with no fractional or exponent part that fits an `i64`.
    Int(i64),
    /// Any other number. Non-finite values serialize as `null` (JSON has
    /// no NaN/infinity).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object: ordered `(key, value)` pairs, keys unique.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builder shorthand for [`Json::Str`].
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// A float rounded to `decimals` places before storage, so artifacts
    /// that historically printed `{:.3}`-style values keep short, stable
    /// renderings (`0.302` rather than `0.30199999999999999`).
    pub fn float_rounded(x: f64, decimals: u32) -> Json {
        let scale = 10f64.powi(decimals as i32);
        Json::Float((x * scale).round() / scale)
    }

    /// The object pairs, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// A numeric value widened to `f64` ([`Json::Int`] or [`Json::Float`]).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// A non-negative integer. Only exact [`Json::Int`] values qualify —
    /// `2048.0` is not a set count.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// Looks a key up in an object (first match; parsed objects have
    /// unique keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Parses a strict JSON document: exactly one value, no trailing
    /// content, unique object keys, nesting bounded by [`MAX_DEPTH`].
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing content after the document"));
        }
        Ok(value)
    }

    /// Serializes with two-space indentation and a trailing newline — the
    /// shape of the `BENCH_*.json` artifacts.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Float(f) => write_f64(*f, out),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    indent(out, depth + 1);
                    write_escaped(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                    if i + 1 < pairs.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                indent(out, depth);
                out.push('}');
            }
            other => other.write_compact(out),
        }
    }
}

impl fmt::Display for Json {
    /// Compact serialization (no whitespace).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write_compact(&mut out);
        f.write_str(&out)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

/// Shortest-round-trip float rendering; non-finite values become `null`.
/// Integral floats keep a `.0` so the value re-parses as [`Json::Float`]
/// and round-trips structurally.
fn write_f64(f: f64, out: &mut String) {
    if !f.is_finite() {
        out.push_str("null");
        return;
    }
    let s = format!("{f}");
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A strict-parse failure with the byte offset where it was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where the problem was found.
    pub pos: usize,
    /// What was wrong there.
    pub detail: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.pos, self.detail)
    }
}

impl Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, detail: impl Into<String>) -> JsonError {
        JsonError {
            pos: self.pos,
            detail: detail.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH}")));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected byte 0x{c:02x}"))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key_pos = self.pos;
            if self.peek() != Some(b'"') {
                return Err(self.err("expected a string key"));
            }
            let key = self.string()?;
            if pairs.iter().any(|(k, _)| *k == key) {
                return Err(JsonError {
                    pos: key_pos,
                    detail: format!("duplicate key \"{key}\""),
                });
            }
            self.skip_ws();
            self.expect(b':')
                .map_err(|_| self.err("expected ':' after key"))?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: a run of plain bytes.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // The input is &str, so the byte run is valid UTF-8.
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .expect("input slices stay on char boundaries"),
                );
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    out.push(self.escape()?);
                }
                Some(c) => return Err(self.err(format!("unescaped control byte 0x{c:02x}"))),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self) -> Result<char, JsonError> {
        let c = self.peek().ok_or_else(|| self.err("dangling escape"))?;
        self.pos += 1;
        Ok(match c {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'b' => '\u{8}',
            b'f' => '\u{c}',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'u' => {
                let hi = self.hex4()?;
                if (0xD800..0xDC00).contains(&hi) {
                    // High surrogate: a \uXXXX low surrogate must follow.
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        self.expect(b'u')
                            .map_err(|_| self.err("expected low surrogate escape"))?;
                        let lo = self.hex4()?;
                        if !(0xDC00..0xE000).contains(&lo) {
                            return Err(self.err("invalid low surrogate"));
                        }
                        let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                        char::from_u32(code).ok_or_else(|| self.err("invalid surrogate pair"))?
                    } else {
                        return Err(self.err("unpaired high surrogate"));
                    }
                } else if (0xDC00..0xE000).contains(&hi) {
                    return Err(self.err("unpaired low surrogate"));
                } else {
                    char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                }
            }
            other => return Err(self.err(format!("invalid escape '\\{}'", other as char))),
        })
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("non-hex digit in \\u escape"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: '0' alone, or a nonzero digit run (no leading zeros).
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
                if matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    return Err(self.err("leading zero in number"));
                }
            }
            Some(c) if c.is_ascii_digit() => {
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("expected a digit")),
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("expected a digit after the decimal point"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("expected a digit in the exponent"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
            // Out of i64 range: fall through to the float representation.
        }
        let f: f64 = text
            .parse()
            .map_err(|_| self.err(format!("unparsable number '{text}'")))?;
        if !f.is_finite() {
            return Err(self.err(format!("number '{text}' overflows f64")));
        }
        Ok(Json::Float(f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_writer_matches_spec_shapes() {
        assert_eq!(Json::Null.to_string(), "null");
        assert_eq!(Json::Bool(true).to_string(), "true");
        assert_eq!(Json::Int(-7).to_string(), "-7");
        assert_eq!(Json::Float(1.5).to_string(), "1.5");
        assert_eq!(Json::Float(2.0).to_string(), "2.0");
        assert_eq!(Json::Float(f64::NAN).to_string(), "null");
        assert_eq!(Json::str("a\"b\\c\nd").to_string(), r#""a\"b\\c\nd""#);
        assert_eq!(
            Json::Arr(vec![Json::Int(1), Json::Null]).to_string(),
            "[1,null]"
        );
        assert_eq!(
            Json::Obj(vec![("k".into(), Json::Bool(false))]).to_string(),
            r#"{"k":false}"#
        );
    }

    #[test]
    fn object_order_is_insertion_order() {
        let a = Json::Obj(vec![("z".into(), Json::Int(1)), ("a".into(), Json::Int(2))]);
        assert_eq!(a.to_string(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn pretty_round_trips() {
        let v = Json::Obj(vec![
            ("xs".into(), Json::Arr(vec![Json::Int(1), Json::Int(2)])),
            ("empty".into(), Json::Arr(vec![])),
            (
                "nested".into(),
                Json::Obj(vec![("f".into(), Json::Float(0.25))]),
            ),
        ]);
        let pretty = v.pretty();
        assert!(pretty.ends_with('\n'));
        assert_eq!(Json::parse(&pretty).unwrap(), v);
    }

    #[test]
    fn parser_rejects_duplicates_and_trailing_garbage() {
        assert!(Json::parse(r#"{"a":1,"a":2}"#).is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("").is_err());
    }

    #[test]
    fn float_rounding_helper_keeps_renders_short() {
        assert_eq!(Json::float_rounded(0.1 + 0.2, 3).to_string(), "0.3");
        assert_eq!(Json::float_rounded(2.26456, 2).to_string(), "2.26");
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"n":3,"f":1.5,"s":"x","b":true,"a":[1]}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("f").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get("f").unwrap().as_u64(), None);
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 1);
        assert!(v.get("missing").is_none());
    }
}
