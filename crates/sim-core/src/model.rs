//! The trait every LLC scheme implements, and the four access outcomes the
//! paper prices differently.

use std::fmt;
use std::ops::Range;

use crate::{
    Access, AccessKind, Address, CacheGeometry, CacheStats, DecodedAccess, DecodedTrace, Snapshot,
    SnapshotError, Trace,
};

/// The outcome of one cache access, at the granularity the paper's timing
/// model distinguishes (§5.1).
///
/// Conventional schemes (LRU, DIP, PeLIFO, V-Way) only produce
/// [`HitLocal`](AccessResult::HitLocal) and
/// [`MissLocal`](AccessResult::MissLocal); SBC and STEM may additionally
/// probe a cooperative set, producing the two `Cooperative` variants with
/// their extra tag-store access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessResult {
    /// Hit in the block's home set (one tag + one data access).
    HitLocal,
    /// Hit in the coupled/cooperative set (two tag + one data access).
    HitCooperative,
    /// Miss after probing only the home set (one tag access).
    MissLocal,
    /// Miss after probing the home set and the cooperative set (two tag
    /// accesses).
    MissCooperative,
}

impl AccessResult {
    /// Whether the access hit anywhere on chip.
    #[inline]
    pub fn is_hit(self) -> bool {
        matches!(self, AccessResult::HitLocal | AccessResult::HitCooperative)
    }

    /// Whether the access missed the LLC entirely.
    #[inline]
    pub fn is_miss(self) -> bool {
        !self.is_hit()
    }

    /// Whether a second (cooperative) set was probed.
    #[inline]
    pub fn probed_cooperative(self) -> bool {
        matches!(
            self,
            AccessResult::HitCooperative | AccessResult::MissCooperative
        )
    }
}

impl fmt::Display for AccessResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AccessResult::HitLocal => "local hit",
            AccessResult::HitCooperative => "cooperative hit",
            AccessResult::MissLocal => "miss",
            AccessResult::MissCooperative => "miss after cooperative probe",
        };
        f.write_str(s)
    }
}

/// A last-level cache scheme under trace-driven simulation.
///
/// The trait is object-safe so experiments can hold heterogeneous scheme
/// collections as `Box<dyn CacheModel>` ([C-OBJECT]).
///
/// # Examples
///
/// Run a trace through any scheme and read its statistics:
///
/// ```no_run
/// use stem_sim_core::{Access, Address, CacheModel, Trace};
///
/// fn mpki(cache: &mut dyn CacheModel, trace: &Trace) -> f64 {
///     cache.run(trace);
///     cache.stats().mpki(trace.instructions())
/// }
/// ```
///
/// [C-OBJECT]: https://rust-lang.github.io/api-guidelines/flexibility.html
pub trait CacheModel {
    /// Processes one access and reports its outcome.
    fn access(&mut self, addr: Address, kind: AccessKind) -> AccessResult;

    /// Aggregate statistics since construction (or the last
    /// [`reset_stats`](CacheModel::reset_stats)).
    fn stats(&self) -> &CacheStats;

    /// Mutable access to the statistics, so non-demand traffic (prefetch
    /// fills, diagnostics) can snapshot and restore the counters around an
    /// access instead of polluting the demand view. See
    /// [`access_non_demand`](CacheModel::access_non_demand).
    fn stats_mut(&mut self) -> &mut CacheStats;

    /// Clears the statistics without disturbing cache contents — used to
    /// exclude warm-up from measurement, mirroring the paper's
    /// cache-warming phase (§5.1).
    fn reset_stats(&mut self) {
        *self.stats_mut() = CacheStats::default();
    }

    /// Processes one access *without* perturbing the statistics: the cache
    /// contents update normally (fills, evictions, replacement state) but
    /// every counter is restored to its pre-access value. This is the
    /// insertion path for prefetches and other non-demand traffic, which
    /// the paper's MPKI/AMAT metrics must exclude.
    fn access_non_demand(&mut self, addr: Address, kind: AccessKind) -> AccessResult {
        let before = *self.stats();
        let result = self.access(addr, kind);
        *self.stats_mut() = before;
        result
    }

    /// The data-store geometry of this cache.
    fn geometry(&self) -> CacheGeometry;

    /// A short scheme name for reports (e.g. `"LRU"`, `"STEM"`).
    fn name(&self) -> &str;

    /// Processes every access of a trace in order.
    fn run(&mut self, trace: &Trace) {
        for a in trace {
            self.access(a.addr, a.kind);
        }
    }

    /// Runs one access expressed as an [`Access`] record.
    fn access_record(&mut self, access: Access) -> AccessResult {
        self.access(access.addr, access.kind)
    }

    /// Processes one pre-decoded access.
    ///
    /// # Contract
    ///
    /// Callers must only invoke this when the access was decoded at this
    /// cache's set count and line size
    /// ([`DecodedTrace::compatible_with`]); under that contract the
    /// pre-extracted `set`/`line` fields are exactly what
    /// [`access`](CacheModel::access) would re-derive, and overriding
    /// implementations may consume them directly. The provided default is
    /// the documented *fallback through the existing `Access` path*: it
    /// reconstructs the line-aligned byte address and calls
    /// [`access`](CacheModel::access), so schemes whose probe geometry
    /// differs from the decode geometry (e.g. V-Way's tag-store lookup)
    /// need no override and still behave identically.
    fn access_decoded(&mut self, a: DecodedAccess) -> AccessResult {
        self.access(a.address(self.geometry().line_bytes()), a.kind())
    }

    /// Replays the decoded accesses in `range`, in order.
    ///
    /// When the decode geometry is compatible with this cache
    /// ([`DecodedTrace::compatible_with`]) each access goes through
    /// [`access_decoded`](CacheModel::access_decoded); otherwise every
    /// access falls back to the byte-address [`access`](CacheModel::access)
    /// path, reconstructed at the *trace's* line granularity so the stream
    /// of line addresses the cache observes is unchanged. Both arms produce
    /// per-access outcomes identical to replaying the original `Trace`.
    ///
    /// # Panics
    ///
    /// Panics if `range` is out of bounds for `trace`.
    fn replay_decoded(&mut self, trace: &DecodedTrace, range: Range<usize>) {
        if trace.compatible_with(self.geometry()) {
            for a in trace.iter_range(range) {
                self.access_decoded(a);
            }
        } else {
            replay_decoded_via_access(self, trace, range);
        }
    }

    /// Replays an entire decoded trace
    /// (see [`replay_decoded`](CacheModel::replay_decoded)).
    fn run_decoded(&mut self, trace: &DecodedTrace) {
        self.replay_decoded(trace, 0..trace.len());
    }

    /// Whether set-sharded replay of this cache is equivalent to serial
    /// replay.
    ///
    /// # Contract
    ///
    /// Returning `true` asserts: for **any** partition of the set space into
    /// disjoint groups that keeps each set's partner `s ^ (sets/2)` in the
    /// same group (see [`ShardedTrace`](crate::ShardedTrace)), replaying
    /// each group's accesses in source order against a *fresh* instance of
    /// this cache produces, per access, exactly the outcome of the serial
    /// replay — and the per-instance [`CacheStats`](crate::CacheStats) sum
    /// to the serial totals. That holds precisely when every piece of
    /// mutable state the access path reads or writes is local to one set
    /// (or one partner pair): no global PSEL or election counters, no shared
    /// victim buffer or data store, no RNG consumed on a data-dependent
    /// subset of accesses.
    ///
    /// The default is `false` — serial replay is always correct, so a
    /// scheme must opt in explicitly, and dispatchers route anything that
    /// declines through the existing serial path.
    fn supports_set_sharding(&self) -> bool {
        false
    }

    /// Whether sampled (strided-subset) replay of this cache is a valid
    /// estimator of its serial behaviour.
    ///
    /// # Contract
    ///
    /// Returning `true` asserts: replaying only the accesses of a
    /// pair-preserving subset of the set space (see
    /// [`SampledTrace`](crate::SampledTrace)) against a fresh instance of
    /// this cache reproduces, for every *selected* set, exactly the
    /// per-access outcomes of the serial full-trace replay — or, for a
    /// scheme that opts in with global state (DIP), a documented
    /// approximation whose error is measured and bounded in the bench
    /// artifacts. Scaling the measured counts by
    /// [`SampledTrace::scale_factor`](crate::SampledTrace::scale_factor)
    /// then estimates the full-cache counts, with error coming only from
    /// the extrapolation (per-set behaviour is not distorted).
    ///
    /// The default inherits [`supports_set_sharding`]: every piece of
    /// state being set-local (or pair-local) is exactly the property that
    /// makes dropped sets invisible to the kept ones, so the sharding
    /// boundary is also the zero-distortion sampling boundary. Schemes
    /// whose global state observes all sets (PeLIFO's election, V-Way's
    /// shared tag/data store, STEM's shadow machinery, a global RNG) must
    /// not opt in without their own documented story; DIP opts in
    /// explicitly because set dueling *is* a sampling estimator (see its
    /// policy override).
    ///
    /// [`supports_set_sharding`]: CacheModel::supports_set_sharding
    fn supports_set_sampling(&self) -> bool {
        self.supports_set_sharding()
    }

    /// Whether this cache can checkpoint and restore its complete replay
    /// state.
    ///
    /// # Contract
    ///
    /// Returning `true` asserts: [`snapshot`](CacheModel::snapshot) returns
    /// `Some` capture of **every** piece of mutable state the access path
    /// reads or writes — tag store, replacement metadata, statistics, any
    /// global counters or RNG — and [`restore`](CacheModel::restore) of
    /// that capture into a fresh instance of the same scheme and geometry
    /// makes the instance produce, per subsequent access, exactly the
    /// [`AccessResult`] stream and [`CacheStats`] the captured instance
    /// would have produced. Restore is exact or refused; there is no
    /// approximate tier.
    ///
    /// The default is `false` — a cold run is always correct, so a scheme
    /// must opt in explicitly, and dispatchers silently run anything that
    /// declines from cold (a declined offer changes no results). Refusing
    /// overrides document the disqualifying state they cannot capture
    /// cheaply, mirroring the sharding/sampling boundaries above.
    fn supports_snapshot(&self) -> bool {
        false
    }

    /// Checkpoints the complete replay state, or `None` when the scheme
    /// declines ([`supports_snapshot`](CacheModel::supports_snapshot) is
    /// `false`).
    ///
    /// The capture is deep: the snapshot stays valid however the live
    /// cache is mutated afterwards.
    fn snapshot(&self) -> Option<Snapshot> {
        None
    }

    /// Replaces this cache's complete replay state with `snapshot`'s.
    ///
    /// Implementations verify the target first
    /// ([`Snapshot::verify_target`]): a snapshot of another scheme or
    /// geometry is an error, never a silent partial restore. On any error
    /// the cache is left unmodified.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Unsupported`] (the default — the scheme declines
    /// the capability), or the scheme/geometry/state mismatches named in
    /// [`SnapshotError`].
    fn restore(&mut self, snapshot: &Snapshot) -> Result<(), SnapshotError> {
        let _ = snapshot;
        Err(crate::snapshot::unsupported(self.name()))
    }
}

/// The documented incompatible-geometry fallback for
/// [`CacheModel::replay_decoded`]: re-materializes each access as a
/// line-aligned byte address at the *trace's* line granularity and feeds it
/// to [`CacheModel::access`], so the stream of line addresses the cache
/// observes is exactly what the original `Trace` would have produced.
/// Scheme-specific `replay_decoded` overrides delegate their incompatible
/// arm here so the fallback semantics stay in one place.
pub fn replay_decoded_via_access<C: CacheModel + ?Sized>(
    cache: &mut C,
    trace: &DecodedTrace,
    range: Range<usize>,
) {
    let line_bytes = trace.geometry().line_bytes();
    for a in trace.iter_range(range) {
        cache.access(a.address(line_bytes), a.kind());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn result_predicates() {
        assert!(AccessResult::HitLocal.is_hit());
        assert!(AccessResult::HitCooperative.is_hit());
        assert!(AccessResult::MissLocal.is_miss());
        assert!(AccessResult::MissCooperative.is_miss());
        assert!(!AccessResult::HitLocal.probed_cooperative());
        assert!(AccessResult::HitCooperative.probed_cooperative());
        assert!(!AccessResult::MissLocal.probed_cooperative());
        assert!(AccessResult::MissCooperative.probed_cooperative());
    }

    #[test]
    fn result_display() {
        assert_eq!(AccessResult::HitLocal.to_string(), "local hit");
        assert_eq!(
            AccessResult::MissCooperative.to_string(),
            "miss after cooperative probe"
        );
    }

    /// A trivial always-miss cache to exercise the trait's default methods.
    struct NullCache {
        stats: CacheStats,
        geom: CacheGeometry,
    }

    impl CacheModel for NullCache {
        fn access(&mut self, _addr: Address, _kind: AccessKind) -> AccessResult {
            self.stats.record_local_miss();
            AccessResult::MissLocal
        }
        fn stats(&self) -> &CacheStats {
            &self.stats
        }
        fn stats_mut(&mut self) -> &mut CacheStats {
            &mut self.stats
        }
        fn geometry(&self) -> CacheGeometry {
            self.geom
        }
        fn name(&self) -> &str {
            "null"
        }
    }

    #[test]
    fn run_processes_whole_trace_and_is_object_safe() {
        let mut cache: Box<dyn CacheModel> = Box::new(NullCache {
            stats: CacheStats::default(),
            geom: CacheGeometry::micro2010_l2(),
        });
        let trace: Trace = (0..10u64)
            .map(|i| Access::read(Address::new(i * 64)))
            .collect();
        cache.run(&trace);
        assert_eq!(cache.stats().accesses(), 10);
        cache.reset_stats();
        assert_eq!(cache.stats().accesses(), 0);
        let r = cache.access_record(Access::write(Address::new(0)));
        assert!(r.is_miss());
    }

    #[test]
    fn decoded_defaults_replay_through_access_path() {
        let geom = CacheGeometry::micro2010_l2();
        let trace: Trace = (0..100u64)
            .map(|i| Access::read(Address::new(i * 64 + i % 64))) // unaligned
            .collect();
        let decoded = crate::DecodedTrace::decode(&trace, geom);

        let mut cache: Box<dyn CacheModel> = Box::new(NullCache {
            stats: CacheStats::default(),
            geom,
        });
        cache.run_decoded(&decoded);
        assert_eq!(cache.stats().accesses(), 100);

        cache.reset_stats();
        cache.replay_decoded(&decoded, 10..30);
        assert_eq!(cache.stats().accesses(), 20);

        // Incompatible geometry exercises the fallback arm.
        let mut small = NullCache {
            stats: CacheStats::default(),
            geom: CacheGeometry::new(64, 4, 64).unwrap(),
        };
        assert!(!decoded.compatible_with(small.geom));
        small.run_decoded(&decoded);
        assert_eq!(small.stats.accesses(), 100);

        let r = cache.access_decoded(decoded.get(0));
        assert!(r.is_miss());
    }

    #[test]
    fn non_demand_access_leaves_stats_untouched() {
        let mut cache = NullCache {
            stats: CacheStats::default(),
            geom: CacheGeometry::micro2010_l2(),
        };
        cache.access(Address::new(0), AccessKind::Read);
        let before = *cache.stats();
        let r = cache.access_non_demand(Address::new(64), AccessKind::Read);
        assert!(r.is_miss());
        assert_eq!(*cache.stats(), before, "non-demand traffic must not count");
    }
}
