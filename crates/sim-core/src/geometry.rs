//! Cache geometry: sets × ways × line size, and the address arithmetic the
//! three-tier organization of §2.1 implies.

use crate::{Address, GeometryError, LineAddr};

/// The shape of a set-associative cache.
///
/// A geometry fixes the MOD set-indexing function of §2.1: the set index is
/// the line address modulo the number of sets, and the tag is the remaining
/// upper bits.
///
/// # Examples
///
/// ```
/// use stem_sim_core::CacheGeometry;
///
/// # fn main() -> Result<(), stem_sim_core::GeometryError> {
/// // The paper's L2: 2MB, 16-way, 64-byte lines => 2048 sets (Table 1).
/// let l2 = CacheGeometry::new(2048, 16, 64)?;
/// assert_eq!(l2.capacity_bytes(), 2 * 1024 * 1024);
/// assert_eq!(l2.tag_bits(), 44 - 11 - 6); // Table 3: 27-bit tags
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheGeometry {
    sets: usize,
    ways: usize,
    line_bytes: u64,
}

impl CacheGeometry {
    /// Creates a geometry with `sets` sets, `ways` ways per set, and
    /// `line_bytes`-byte lines.
    ///
    /// # Errors
    ///
    /// Returns an error if `sets` or `line_bytes` is not a non-zero power of
    /// two, or if `ways` is zero.
    pub fn new(sets: usize, ways: usize, line_bytes: u64) -> Result<Self, GeometryError> {
        if sets == 0 || !sets.is_power_of_two() {
            return Err(GeometryError::SetsNotPowerOfTwo(sets));
        }
        if line_bytes == 0 || !line_bytes.is_power_of_two() {
            return Err(GeometryError::LineBytesNotPowerOfTwo(line_bytes));
        }
        if ways == 0 {
            return Err(GeometryError::ZeroWays);
        }
        Ok(CacheGeometry {
            sets,
            ways,
            line_bytes,
        })
    }

    /// The paper's standard L2 configuration: 2MB, 16-way, 64-byte lines
    /// (Table 1), i.e. 2048 sets.
    pub fn micro2010_l2() -> Self {
        CacheGeometry {
            sets: 2048,
            ways: 16,
            line_bytes: 64,
        }
    }

    /// A geometry with the same capacity but a different associativity,
    /// used by the paper's associativity sweeps (Fig. 3 / Fig. 10), which
    /// hold total capacity constant while varying ways.
    ///
    /// # Errors
    ///
    /// Returns an error if the resulting set count is not a power of two
    /// (i.e. `ways` must divide the line count evenly into a power of two).
    pub fn with_ways_same_capacity(self, ways: usize) -> Result<Self, GeometryError> {
        if ways == 0 {
            return Err(GeometryError::ZeroWays);
        }
        let lines = self.sets * self.ways;
        let sets = lines / ways;
        CacheGeometry::new(sets, ways, self.line_bytes)
    }

    /// Number of sets.
    #[inline]
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Associativity (ways per set).
    #[inline]
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Line size in bytes.
    #[inline]
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// Total capacity in bytes.
    #[inline]
    pub fn capacity_bytes(&self) -> u64 {
        self.sets as u64 * self.ways as u64 * self.line_bytes
    }

    /// Total number of cache lines.
    #[inline]
    pub fn total_lines(&self) -> usize {
        self.sets * self.ways
    }

    /// Number of bits of the address consumed by the intra-line offset.
    #[inline]
    pub fn offset_bits(&self) -> u32 {
        self.line_bytes.trailing_zeros()
    }

    /// Number of bits of the address consumed by the set index.
    #[inline]
    pub fn index_bits(&self) -> u32 {
        self.sets.trailing_zeros()
    }

    /// Number of tag bits for the simulated 44-bit physical address space
    /// (Table 3 arithmetic).
    #[inline]
    pub fn tag_bits(&self) -> u32 {
        crate::addr::PHYSICAL_ADDRESS_BITS - self.index_bits() - self.offset_bits()
    }

    /// The set a byte address maps to under MOD indexing.
    #[inline]
    pub fn set_index(&self, addr: Address) -> usize {
        self.set_index_of_line(addr.line(self.line_bytes))
    }

    /// The set a line address maps to.
    #[inline]
    pub fn set_index_of_line(&self, line: LineAddr) -> usize {
        (line.raw() & (self.sets as u64 - 1)) as usize
    }

    /// The tag of a line address (the line address with index bits stripped).
    #[inline]
    pub fn tag_of_line(&self, line: LineAddr) -> u64 {
        line.raw() >> self.index_bits()
    }

    /// Reconstructs a line address from a (tag, set index) pair.
    ///
    /// Inverse of [`tag_of_line`](Self::tag_of_line) +
    /// [`set_index_of_line`](Self::set_index_of_line).
    #[inline]
    pub fn line_of(&self, tag: u64, set: usize) -> LineAddr {
        LineAddr::new((tag << self.index_bits()) | set as u64)
    }

    /// Builds the byte address of a line that maps to `set` with tag `tag`.
    ///
    /// Convenience for workload generators that construct per-set access
    /// patterns.
    #[inline]
    pub fn address_of(&self, tag: u64, set: usize) -> Address {
        self.line_of(tag, set).to_address(self.line_bytes)
    }
}

impl Default for CacheGeometry {
    /// The paper's standard L2 (Table 1).
    fn default() -> Self {
        CacheGeometry::micro2010_l2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micro2010_l2_matches_table1_and_table3() {
        let g = CacheGeometry::micro2010_l2();
        assert_eq!(g.sets(), 2048);
        assert_eq!(g.ways(), 16);
        assert_eq!(g.line_bytes(), 64);
        assert_eq!(g.capacity_bytes(), 2 * 1024 * 1024);
        assert_eq!(g.offset_bits(), 6);
        assert_eq!(g.index_bits(), 11);
        assert_eq!(g.tag_bits(), 27); // Table 3
    }

    #[test]
    fn rejects_bad_shapes() {
        assert!(CacheGeometry::new(3, 4, 64).is_err());
        assert!(CacheGeometry::new(0, 4, 64).is_err());
        assert!(CacheGeometry::new(8, 0, 64).is_err());
        assert!(CacheGeometry::new(8, 4, 48).is_err());
        assert!(CacheGeometry::new(8, 4, 0).is_err());
    }

    #[test]
    fn set_index_is_mod() {
        let g = CacheGeometry::new(2048, 16, 64).unwrap();
        let addr = Address::new(0xdead_beef);
        assert_eq!(g.set_index(addr), ((0xdead_beefu64 >> 6) % 2048) as usize);
    }

    #[test]
    fn tag_index_roundtrip() {
        let g = CacheGeometry::new(2048, 16, 64).unwrap();
        let line = Address::new(0x1234_5678).line(64);
        let tag = g.tag_of_line(line);
        let set = g.set_index_of_line(line);
        assert_eq!(g.line_of(tag, set), line);
    }

    #[test]
    fn address_of_lands_in_requested_set() {
        let g = CacheGeometry::new(256, 8, 64).unwrap();
        for set in [0usize, 1, 100, 255] {
            for tag in [0u64, 1, 0xabc] {
                let a = g.address_of(tag, set);
                assert_eq!(g.set_index(a), set);
                assert_eq!(g.tag_of_line(a.line(64)), tag);
            }
        }
    }

    #[test]
    fn with_ways_same_capacity_preserves_bytes() {
        let g = CacheGeometry::micro2010_l2();
        for ways in [1usize, 2, 4, 8, 16, 32] {
            let g2 = g.with_ways_same_capacity(ways).unwrap();
            assert_eq!(g2.capacity_bytes(), g.capacity_bytes());
            assert_eq!(g2.ways(), ways);
        }
        // 2048*16 lines / 3 ways is not a power-of-two set count.
        assert!(g.with_ways_same_capacity(3).is_err());
        assert!(g.with_ways_same_capacity(0).is_err());
    }
}
