//! Trace serialization: a compact, versioned binary format so traces can
//! be generated once and replayed across machines/runs.
//!
//! Format (`STEMTRC1`, little-endian):
//!
//! ```text
//! magic    8 bytes   "STEMTRC1"
//! count    u64       number of accesses
//! records  count ×   { addr: u64, inst_gap: u32, kind: u8, pad: [u8;3] }
//! ```
//!
//! The fixed 16-byte record keeps reading trivially seekable; a 50M-access
//! trace is 800MB, in line with what architectural trace formats cost.
//!
//! Reading is lossless: every field of every record roundtrips bit-exactly
//! through [`write_trace`]/[`read_trace`], including `inst_gap == 0`
//! (back-to-back accesses with no intervening instructions).

use std::io::{self, Read, Write};

use crate::{Access, AccessKind, Address, Trace, TraceError};

const MAGIC: &[u8; 8] = b"STEMTRC1";

/// Largest record count a reader will accept (2^40 records = 16 TiB of
/// payload); anything above this is treated as a corrupted header.
const MAX_RECORD_COUNT: u64 = 1 << 40;

/// Writes `trace` to `w` in the `STEMTRC1` format.
///
/// Pass `&mut writer` to keep ownership of your writer.
///
/// # Errors
///
/// Propagates any I/O error from the writer.
pub fn write_trace<W: Write>(mut w: W, trace: &Trace) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&(trace.len() as u64).to_le_bytes())?;
    for a in trace {
        w.write_all(&a.addr.raw().to_le_bytes())?;
        w.write_all(&a.inst_gap.to_le_bytes())?;
        w.write_all(&[u8::from(a.kind.is_write()), 0, 0, 0])?;
    }
    Ok(())
}

/// Reads a `STEMTRC1` trace from `r`.
///
/// Pass `&mut reader` to keep ownership of your reader.
///
/// # Errors
///
/// Returns a typed [`TraceError`] distinguishing format corruption (bad
/// magic, bad kind byte, impossible count) from transport failures; a
/// truncated stream surfaces as [`TraceError::Io`] with kind
/// `UnexpectedEof`.
pub fn read_trace<R: Read>(mut r: R) -> Result<Trace, TraceError> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(TraceError::BadMagic(magic));
    }
    let mut count_bytes = [0u8; 8];
    r.read_exact(&mut count_bytes)?;
    let count = u64::from_le_bytes(count_bytes);
    if usize::try_from(count).is_err() || count > MAX_RECORD_COUNT {
        return Err(TraceError::TooLarge(count));
    }
    // Cap the pre-allocation: a corrupted count field must produce a typed
    // error (or EOF below), never an allocator abort.
    let mut trace = Trace::with_capacity(count.min(1 << 20) as usize);
    let mut rec = [0u8; 16];
    for _ in 0..count {
        r.read_exact(&mut rec)?;
        let addr = u64::from_le_bytes(rec[0..8].try_into().expect("8-byte slice"));
        let gap = u32::from_le_bytes(rec[8..12].try_into().expect("4-byte slice"));
        let kind = match rec[12] {
            0 => AccessKind::Read,
            1 => AccessKind::Write,
            other => return Err(TraceError::BadKind(other)),
        };
        trace.push(Access {
            addr: Address::new(addr),
            kind,
            inst_gap: gap,
        });
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut t = Trace::new();
        t.push(Access::read(Address::new(0x40)).with_inst_gap(3));
        t.push(Access::write(Address::new(0x1234_5678)).with_inst_gap(1));
        t.push(Access::read(Address::new((1 << 44) - 64)));
        t
    }

    #[test]
    fn roundtrip_preserves_trace() {
        let t = sample();
        let mut buf = Vec::new();
        write_trace(&mut buf, &t).unwrap();
        let back = read_trace(buf.as_slice()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn zero_inst_gap_roundtrips_exactly() {
        // Regression: read_trace used to clamp inst_gap 0 -> 1, so a
        // written trace with back-to-back accesses did not read back equal.
        // Built literally: the `with_inst_gap` builder clamps to 1 by
        // design, but the trace format itself represents zero gaps.
        let mut t = Trace::new();
        t.push(Access {
            addr: Address::new(0x80),
            kind: AccessKind::Read,
            inst_gap: 0,
        });
        t.push(Access {
            addr: Address::new(0xC0),
            kind: AccessKind::Write,
            inst_gap: 0,
        });
        let mut buf = Vec::new();
        write_trace(&mut buf, &t).unwrap();
        let back = read_trace(buf.as_slice()).unwrap();
        assert_eq!(back, t);
        assert_eq!(back.as_slice()[0].inst_gap, 0);
        assert_eq!(back.as_slice()[1].inst_gap, 0);
    }

    #[test]
    fn empty_trace_roundtrips() {
        let t = Trace::new();
        let mut buf = Vec::new();
        write_trace(&mut buf, &t).unwrap();
        assert_eq!(read_trace(buf.as_slice()).unwrap(), t);
    }

    #[test]
    fn bad_magic_rejected() {
        let buf = b"NOTATRCE\0\0\0\0\0\0\0\0".to_vec();
        let err = read_trace(buf.as_slice()).unwrap_err();
        assert!(matches!(err, TraceError::BadMagic(m) if &m == b"NOTATRCE"));
        assert!(err.is_corruption());
    }

    #[test]
    fn truncated_records_rejected() {
        let t = sample();
        let mut buf = Vec::new();
        write_trace(&mut buf, &t).unwrap();
        buf.truncate(buf.len() - 5);
        let err = read_trace(buf.as_slice()).unwrap_err();
        assert!(matches!(&err, TraceError::Io(e) if e.kind() == io::ErrorKind::UnexpectedEof));
        assert!(err.is_corruption());
    }

    #[test]
    fn bad_kind_byte_rejected() {
        let t = sample();
        let mut buf = Vec::new();
        write_trace(&mut buf, &t).unwrap();
        let kind_offset = 8 + 8 + 12; // magic + count + first record's kind
        buf[kind_offset] = 9;
        let err = read_trace(buf.as_slice()).unwrap_err();
        assert!(matches!(err, TraceError::BadKind(9)));
    }

    #[test]
    fn absurd_count_rejected_without_allocating() {
        // A corrupted header declaring u64::MAX records must surface as a
        // typed error, not an allocator abort or a hang.
        let mut buf = MAGIC.to_vec();
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        let err = read_trace(buf.as_slice()).unwrap_err();
        assert!(matches!(err, TraceError::TooLarge(c) if c == u64::MAX));
        assert!(err.is_corruption());
    }

    #[test]
    fn large_but_plausible_count_fails_with_eof_not_oom() {
        // 2^21 declared records with no payload: the capped pre-allocation
        // must not reserve 32 MiB up front, and the read fails cleanly.
        let mut buf = MAGIC.to_vec();
        buf.extend_from_slice(&(1u64 << 21).to_le_bytes());
        let err = read_trace(buf.as_slice()).unwrap_err();
        assert!(matches!(&err, TraceError::Io(e) if e.kind() == io::ErrorKind::UnexpectedEof));
    }

    #[test]
    fn errors_convert_to_io_error_for_legacy_callers() {
        let buf = b"NOTATRCE\0\0\0\0\0\0\0\0".to_vec();
        let err: io::Error = read_trace(buf.as_slice()).unwrap_err().into();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn size_is_16_bytes_per_record() {
        let t = sample();
        let mut buf = Vec::new();
        write_trace(&mut buf, &t).unwrap();
        assert_eq!(buf.len(), 16 + 16 * t.len());
    }
}
