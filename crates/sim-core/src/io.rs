//! Trace serialization: a compact, versioned binary format so traces can
//! be generated once and replayed across machines/runs.
//!
//! Format (`STEMTRC1`, little-endian):
//!
//! ```text
//! magic    8 bytes   "STEMTRC1"
//! count    u64       number of accesses
//! records  count ×   { addr: u64, inst_gap: u32, kind: u8, pad: [u8;3] }
//! ```
//!
//! The fixed 16-byte record keeps reading trivially seekable; a 50M-access
//! trace is 800MB, in line with what architectural trace formats cost.

use std::io::{self, Read, Write};

use crate::{Access, AccessKind, Address, Trace};

const MAGIC: &[u8; 8] = b"STEMTRC1";

/// Writes `trace` to `w` in the `STEMTRC1` format.
///
/// Pass `&mut writer` to keep ownership of your writer.
///
/// # Errors
///
/// Propagates any I/O error from the writer.
pub fn write_trace<W: Write>(mut w: W, trace: &Trace) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&(trace.len() as u64).to_le_bytes())?;
    for a in trace {
        w.write_all(&a.addr.raw().to_le_bytes())?;
        w.write_all(&a.inst_gap.to_le_bytes())?;
        w.write_all(&[u8::from(a.kind.is_write()), 0, 0, 0])?;
    }
    Ok(())
}

/// Reads a `STEMTRC1` trace from `r`.
///
/// Pass `&mut reader` to keep ownership of your reader.
///
/// # Errors
///
/// Returns `InvalidData` if the magic or record framing is wrong, and
/// propagates any I/O error from the reader.
pub fn read_trace<R: Read>(mut r: R) -> io::Result<Trace> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a STEMTRC1 trace (bad magic)",
        ));
    }
    let mut count_bytes = [0u8; 8];
    r.read_exact(&mut count_bytes)?;
    let count = u64::from_le_bytes(count_bytes);
    let mut trace = Trace::with_capacity(usize::try_from(count).map_err(|_| {
        io::Error::new(io::ErrorKind::InvalidData, "trace too large for this platform")
    })?);
    let mut rec = [0u8; 16];
    for _ in 0..count {
        r.read_exact(&mut rec)?;
        let addr = u64::from_le_bytes(rec[0..8].try_into().expect("8-byte slice"));
        let gap = u32::from_le_bytes(rec[8..12].try_into().expect("4-byte slice"));
        let kind = match rec[12] {
            0 => AccessKind::Read,
            1 => AccessKind::Write,
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("invalid access kind byte {other}"),
                ))
            }
        };
        trace.push(Access { addr: Address::new(addr), kind, inst_gap: gap.max(1) });
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut t = Trace::new();
        t.push(Access::read(Address::new(0x40)).with_inst_gap(3));
        t.push(Access::write(Address::new(0x1234_5678)).with_inst_gap(1));
        t.push(Access::read(Address::new((1 << 44) - 64)));
        t
    }

    #[test]
    fn roundtrip_preserves_trace() {
        let t = sample();
        let mut buf = Vec::new();
        write_trace(&mut buf, &t).unwrap();
        let back = read_trace(buf.as_slice()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn empty_trace_roundtrips() {
        let t = Trace::new();
        let mut buf = Vec::new();
        write_trace(&mut buf, &t).unwrap();
        assert_eq!(read_trace(buf.as_slice()).unwrap(), t);
    }

    #[test]
    fn bad_magic_rejected() {
        let buf = b"NOTATRCE\0\0\0\0\0\0\0\0".to_vec();
        let err = read_trace(buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_records_rejected() {
        let t = sample();
        let mut buf = Vec::new();
        write_trace(&mut buf, &t).unwrap();
        buf.truncate(buf.len() - 5);
        assert!(read_trace(buf.as_slice()).is_err());
    }

    #[test]
    fn bad_kind_byte_rejected() {
        let t = sample();
        let mut buf = Vec::new();
        write_trace(&mut buf, &t).unwrap();
        let kind_offset = 8 + 8 + 12; // magic + count + first record's kind
        buf[kind_offset] = 9;
        assert!(read_trace(buf.as_slice()).is_err());
    }

    #[test]
    fn size_is_16_bytes_per_record() {
        let t = sample();
        let mut buf = Vec::new();
        write_trace(&mut buf, &t).unwrap();
        assert_eq!(buf.len(), 16 + 16 * t.len());
    }
}
