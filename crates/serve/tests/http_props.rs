//! Property-style adversarial coverage for the HTTP parser: under random
//! valid, mangled, split, truncated, and garbage inputs the parser must
//! return a clean error or a correct parse — never panic, never
//! misattribute bytes.
//!
//! Driven by the in-repo deterministic property harness
//! ([`stem_sim_core::prop`]); every failing case prints its replay seed.

use std::io::Cursor;

use stem_serve::chaos::{ChaosConn, ConnPlan};
use stem_serve::http::{read_request, HttpRequest, MAX_HEAD};
use stem_sim_core::prop::{self, Gen};

/// Renders a syntactically valid request with the given body.
fn render(method: &str, path: &str, body: &[u8]) -> Vec<u8> {
    let mut raw = format!(
        "{method} {path} HTTP/1.1\r\nhost: prop\r\ncontent-length: {}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    raw.extend_from_slice(body);
    raw
}

/// A random-but-valid method, path, and binary body.
fn arbitrary_request(g: &mut Gen) -> (String, String, Vec<u8>) {
    let method = ["GET", "POST", "PUT", "patch"][g.usize(0, 4)].to_owned();
    let depth = g.usize(1, 4);
    let path: String = (0..depth)
        .map(|_| format!("/seg{}", g.u32(0, 1000)))
        .collect();
    let body = g.vec_with(0, 300, |g| g.u8(0, 255));
    (method, path, body)
}

#[test]
fn valid_requests_parse_identically_no_matter_how_the_bytes_are_split() {
    prop::check(64, |g| {
        let (method, path, body) = arbitrary_request(g);
        let raw = render(&method, &path, &body);

        let whole = read_request(&mut &raw[..]).expect("valid request parses");
        assert_eq!(whole.method, method.to_ascii_uppercase());
        assert_eq!(whole.path, path);
        assert_eq!(whole.body, body);

        // The same bytes dripped 1..=5 at a time must parse to the same
        // request — the parser cannot depend on read boundaries.
        let mut plan = ConnPlan::healthy();
        plan.read_chunk_cap = g.usize(1, 6);
        let mut split = ChaosConn::new(Cursor::new(raw), plan);
        let dripped = read_request(&mut split).expect("split request parses");
        assert_eq!(dripped, whole);
    });
}

#[test]
fn truncated_bodies_are_reported_as_truncation_never_a_panic() {
    prop::check(64, |g| {
        let (method, path, body) = arbitrary_request(g);
        if body.is_empty() {
            return; // nothing to truncate
        }
        let raw = render(&method, &path, &body);
        let head_len = raw.len() - body.len();
        // Cut anywhere inside the body region, head intact.
        let cut = g.usize(head_len, raw.len());
        let err = read_request(&mut &raw[..cut]).expect_err("short body must error");
        assert!(
            err.0.contains("truncated"),
            "cut at {cut}/{}: {err}",
            raw.len()
        );
        assert!(!err.is_deadline(), "truncation is not a timeout: {err}");
    });
}

#[test]
fn oversized_heads_are_rejected_at_the_cap() {
    prop::check(16, |g| {
        let pad = g.usize(MAX_HEAD, MAX_HEAD + 4096);
        let raw = format!("GET /x HTTP/1.1\r\nx-pad: {}\r\n\r\n", "a".repeat(pad));
        let err = read_request(&mut raw.as_bytes()).expect_err("oversized head");
        assert!(err.0.contains("exceeds"), "{err}");
    });
}

#[test]
fn mangled_request_lines_error_cleanly() {
    prop::check(64, |g| {
        let (method, path, body) = arbitrary_request(g);
        let raw = render(&method, &path, &body);
        let text = String::from_utf8_lossy(&raw).into_owned();
        // Break the request in one of several structural ways.
        let mangled: Vec<u8> = match g.usize(0, 4) {
            // Kill the spaces in the request line.
            0 => text.replacen(' ', "", 2).into_bytes(),
            // Downgrade to a protocol we refuse.
            1 => text.replacen("HTTP/1.1", "GOPHER/7", 1).into_bytes(),
            // A relative target instead of a path.
            2 => text.replacen(&path, "no-leading-slash", 1).into_bytes(),
            // A header line with no colon.
            _ => text.replacen("host: prop", "hostprop", 1).into_bytes(),
        };
        if mangled == raw {
            return; // replacement missed (e.g. path collision) — skip
        }
        read_request(&mut &mangled[..]).expect_err("structurally broken request must error");
    });
}

#[test]
fn trailing_garbage_after_the_body_does_not_leak_into_it() {
    prop::check(64, |g| {
        let (method, path, body) = arbitrary_request(g);
        let mut raw = render(&method, &path, &body);
        let garbage = g.vec_with(1, 128, |g| g.u8(0, 255));
        raw.extend_from_slice(&garbage);
        let req = read_request(&mut &raw[..]).expect("request before garbage parses");
        assert_eq!(req.body, body, "trailing bytes must not reach the body");
    });
}

#[test]
fn random_binary_garbage_never_panics_the_parser() {
    prop::check(256, |g| {
        let noise = g.vec_with(1, 2048, |g| g.u8(0, 255));
        // Any outcome is fine except a panic (which would fail the case).
        let _: Result<HttpRequest, _> = read_request(&mut &noise[..]);
    });
}
