//! The chaos campaign: the service's no-panic / no-hang / byte-identity
//! guarantees under seeded adversarial I/O.
//!
//! Each campaign boots a real service (real simulation executor, tiny
//! traces) behind a [`ChaosTransport`] and drives a scripted mix of
//! healthy requests and fault-injected connections through it. Because
//! every fault is a pure function of `(seed, connection index)`, the
//! assertions are exact, not probabilistic:
//!
//! * `stem_serve_panics_total` is 0 after every storm;
//! * every plan-healthy connection gets its 200, byte-identical across
//!   chaos seeds *and* with chaos disabled entirely;
//! * `/healthz` answers 200 throughout and after the storm;
//! * the cache stays pure: each distinct request simulates exactly once
//!   per service no matter how many chaotic copies of it arrive;
//! * a whole campaign completes in bounded wall-clock (the no-hang
//!   guarantee — one wedged handler would blow the budget);
//! * client `deadline_ms` budgets are enforced at both ends of the job
//!   queue: the handler answers 503 + `Retry-After` at the deadline and
//!   the executor watchdog refuses to start the expired job.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use stem_serve::chaos::{campaign, ChaosTransport};
use stem_serve::exec::Executor;
use stem_serve::http::{self, HttpResponse};
use stem_serve::metrics::Metrics;
use stem_serve::service::{self, ServeConfig};
use stem_serve::transport::{duplex_transport, DuplexConnector, Transport};
use stem_sim_core::Json;

const CONNECTIONS: u64 = 120;
const SEEDS: [u64; 3] = [7, 1337, 0x00C0_FFEE];

fn run_bodies() -> Vec<String> {
    [1000usize, 2000, 3000]
        .iter()
        .map(|accesses| {
            format!(
                r#"{{"benchmark": "mcf", "scheme": "lru", "sets": 64, "ways": 4, "accesses": {accesses}}}"#
            )
        })
        .collect()
}

fn campaign_config(metrics: Arc<Metrics>) -> ServeConfig {
    ServeConfig {
        queue_capacity: 4,
        cache_capacity: 8,
        threads: 1,
        budget: Duration::from_secs(120),
        // Short enough that slow-loris plans overrun it (exercising 408s),
        // long enough that healthy requests never graze it.
        io_deadline: Duration::from_millis(500),
        // Warm-state reuse stays on under chaos: the no-panic guarantee
        // must hold with the snapshot path live.
        snapshot_slots: 16,
        metrics: Some(metrics),
    }
}

/// Runs one full campaign: boots a service on `transport`, drives the
/// scripted connections, asserts the storm invariants, and returns the
/// healthy response bodies keyed by connection index.
fn storm(
    transport: Box<dyn Transport>,
    connector: &DuplexConnector,
    metrics: &Arc<Metrics>,
    plan_seed: u64,
) -> BTreeMap<u64, Vec<u8>> {
    let handle = service::start(transport, campaign_config(Arc::clone(metrics)));
    let bodies = run_bodies();
    let t0 = Instant::now();
    let outcome = campaign::drive(
        connector,
        plan_seed,
        CONNECTIONS,
        &bodies,
        Duration::from_secs(60),
        Duration::from_secs(2),
    );
    let elapsed = t0.elapsed();

    assert!(
        outcome.failures.is_empty(),
        "seed {plan_seed:#x}: healthy connections failed:\n  {}",
        outcome.failures.join("\n  ")
    );
    assert_eq!(outcome.healthy_ok, outcome.healthy_planned);
    assert!(
        outcome.healthy_planned > 50 && outcome.chaotic > 20,
        "seed {plan_seed:#x}: degenerate mix ({} healthy / {} chaotic)",
        outcome.healthy_planned,
        outcome.chaotic
    );
    assert_eq!(
        metrics.panics(),
        0,
        "seed {plan_seed:#x}: a handler panicked under chaos"
    );
    // No-hang: 120 serial connections with millisecond faults and a
    // 500ms I/O deadline must land far under this budget; a single
    // wedged handler alone would consume it.
    assert!(
        elapsed < Duration::from_secs(90),
        "seed {plan_seed:#x}: campaign took {elapsed:?} — something hung"
    );
    // Cache purity: three distinct /run requests per campaign, each
    // simulated exactly once no matter how many copies (healthy or
    // chaotic) arrived; every further healthy copy hit the cache.
    assert_eq!(
        metrics.sim_executions(),
        3,
        "seed {plan_seed:#x}: distinct requests must simulate exactly once"
    );
    assert!(
        metrics.cache_hits() > 10,
        "seed {plan_seed:#x}: repeats must come from the cache ({} hits)",
        metrics.cache_hits()
    );
    // The snapshot cache was live throughout the storm: each distinct
    // request has a distinct warm prefix (the scripts differ in
    // `accesses`), so all three executions warmed cold — and chaotic
    // copies never reached the executor to inflate the counters.
    assert_eq!(
        metrics.snapshot_misses(),
        3,
        "seed {plan_seed:#x}: one warm-up per distinct warm prefix"
    );
    assert_eq!(metrics.snapshot_hits(), 0);

    handle.shutdown();
    drop(connector.connect()); // nudge the accept poll
    handle.join();
    outcome.bodies
}

#[test]
fn chaos_storms_never_panic_and_healthy_bytes_are_seed_invariant() {
    let bodies = run_bodies();
    // request script → response body, accumulated across every seed and
    // the chaos-off control run; any divergence is a purity violation.
    let mut by_request: BTreeMap<String, Vec<u8>> = BTreeMap::new();
    let mut merge = |label: String, observed: BTreeMap<u64, Vec<u8>>| {
        for (index, body) in observed {
            let (method, path, req_body) = campaign::scripted_request(index, &bodies);
            let key = format!("{method} {path} {req_body}");
            match by_request.get(&key) {
                None => {
                    by_request.insert(key, body);
                }
                Some(prev) => assert_eq!(
                    prev, &body,
                    "{label}: response bytes for {method} {path} diverged"
                ),
            }
        }
    };

    for seed in SEEDS {
        let (listener, connector) = duplex_transport();
        let metrics = Arc::new(Metrics::new());
        let transport =
            Box::new(ChaosTransport::new(listener, seed).with_metrics(Arc::clone(&metrics)));
        let observed = storm(transport, &connector, &metrics, seed);
        assert!(
            metrics.chaos_connections() > 20,
            "seed {seed:#x}: chaos was supposed to be on ({} chaotic accepts)",
            metrics.chaos_connections()
        );
        merge(format!("seed {seed:#x}"), observed);
    }

    // Control: same script, no fault injection. The plan bookkeeping
    // still uses SEEDS[0] so the recorded (plan-healthy) subset matches
    // that seed's campaign exactly.
    let (listener, connector) = duplex_transport();
    let metrics = Arc::new(Metrics::new());
    let observed = storm(Box::new(listener), &connector, &metrics, SEEDS[0]);
    assert_eq!(metrics.chaos_connections(), 0);
    merge("chaos-off control".to_owned(), observed);

    // Every request kind in the script must have been observed healthy
    // at least once across the runs.
    assert!(
        by_request.len() == bodies.len() + 1,
        "expected {} /run variants + healthz, saw keys: {:?}",
        bodies.len(),
        by_request.keys().collect::<Vec<_>>()
    );
}

/// A controllable executor: counts executions, signals starts, blocks
/// until released.
fn gated_executor() -> (
    Executor,
    Arc<AtomicUsize>,
    mpsc::Receiver<()>,
    mpsc::Sender<()>,
) {
    let executions = Arc::new(AtomicUsize::new(0));
    let (started_tx, started_rx) = mpsc::channel::<()>();
    let (release_tx, release_rx) = mpsc::channel::<()>();
    let release_rx = Arc::new(Mutex::new(release_rx));
    let count = Arc::clone(&executions);
    let executor: Executor = Arc::new(move |req| {
        count.fetch_add(1, Ordering::SeqCst);
        started_tx.send(()).expect("test listens for starts");
        release_rx
            .lock()
            .expect("release lock")
            .recv()
            .expect("test releases every started cell");
        Ok(Json::Obj(vec![(
            "echo".to_owned(),
            Json::str(req.benchmark.clone()),
        )]))
    });
    (executor, executions, started_rx, release_tx)
}

fn exchange(connector: &DuplexConnector, method: &str, path: &str, body: &[u8]) -> HttpResponse {
    let mut conn = connector.connect().expect("connect");
    http::write_request(&mut conn, method, path, body).expect("send");
    http::read_response(&mut conn).expect("read")
}

#[test]
fn deadline_ms_is_enforced_by_handler_and_executor_watchdog() {
    let (listener, connector) = duplex_transport();
    let metrics = Arc::new(Metrics::new());
    let (executor, executions, started_rx, release_tx) = gated_executor();
    let handle = service::start_with_executor(
        Box::new(listener),
        campaign_config(Arc::clone(&metrics)),
        executor,
    );

    // A: unlimited patience; occupies the executor, which blocks.
    let conn_a = connector.clone();
    let t_a = std::thread::spawn(move || {
        exchange(
            &conn_a,
            "POST",
            "/run",
            br#"{"benchmark": "mcf", "scheme": "lru", "accesses": 1000}"#,
        )
    });
    started_rx
        .recv_timeout(Duration::from_secs(10))
        .expect("A reaches the executor");

    // B: a 300ms budget. It queues behind A, the handler gives up at the
    // deadline with 503 + Retry-After, and the overrun is counted.
    let t0 = Instant::now();
    let b = exchange(
        &connector,
        "POST",
        "/run",
        br#"{"benchmark": "art", "scheme": "lru", "accesses": 1000, "deadline_ms": 300}"#,
    );
    let waited = t0.elapsed();
    assert_eq!(b.status, 503, "{}", b.body_text());
    assert!(b.body_text().contains("deadline"), "{}", b.body_text());
    assert!(
        b.retry_after_secs().is_some(),
        "503 shed must advise a retry; headers: {:?}",
        b.headers
    );
    assert!(
        waited >= Duration::from_millis(300) && waited < Duration::from_secs(5),
        "handler must give up at the deadline, not before or long after ({waited:?})"
    );
    assert!(metrics.deadline_sheds() >= 1);

    // Release A; the executor drains. B is still in the queue but its
    // deadline has passed — the watchdog must shed it, not execute it.
    release_tx.send(()).expect("release A");
    let a = t_a.join().expect("A thread");
    assert_eq!(a.status, 200, "{}", a.body_text());

    handle.shutdown();
    drop(connector.connect());
    handle.join();
    assert_eq!(
        executions.load(Ordering::SeqCst),
        1,
        "the expired job must never reach the executor"
    );
    assert_eq!(metrics.panics(), 0);
}

#[test]
fn invalid_deadlines_are_rejected_before_any_work() {
    let (listener, connector) = duplex_transport();
    let metrics = Arc::new(Metrics::new());
    let handle = service::start(Box::new(listener), campaign_config(Arc::clone(&metrics)));
    for body in [
        br#"{"benchmark": "mcf", "scheme": "lru", "deadline_ms": 0}"#.as_slice(),
        br#"{"benchmark": "mcf", "scheme": "lru", "deadline_ms": -5}"#.as_slice(),
        br#"{"benchmark": "mcf", "scheme": "lru", "deadline_ms": 999999999999}"#.as_slice(),
    ] {
        let resp = exchange(&connector, "POST", "/run", body);
        assert_eq!(resp.status, 400, "{}", resp.body_text());
        assert!(
            resp.body_text().contains("deadline_ms"),
            "{}",
            resp.body_text()
        );
    }
    assert_eq!(metrics.sim_executions(), 0);
    handle.shutdown();
    drop(connector.connect());
    handle.join();
}
