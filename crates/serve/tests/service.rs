//! End-to-end service acceptance tests, all over the in-memory duplex
//! transport: determinism across thread counts, result-cache behaviour
//! proven through `/metrics`, 429 backpressure on a 1-slot queue, strict
//! request rejection, and graceful drain.

use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use stem_serve::exec::Executor;
use stem_serve::http::{self, HttpResponse};
use stem_serve::service::{self, ServeConfig};
use stem_serve::transport::{duplex_transport, DuplexConnector};
use stem_sim_core::Json;

/// One full HTTP exchange against a running service.
fn exchange(connector: &DuplexConnector, method: &str, path: &str, body: &[u8]) -> HttpResponse {
    let mut conn = connector.connect().expect("connect to service");
    http::write_request(&mut conn, method, path, body).expect("send request");
    http::read_response(&mut conn).expect("read response")
}

fn small_config() -> ServeConfig {
    ServeConfig {
        queue_capacity: 4,
        cache_capacity: 8,
        threads: 1,
        budget: Duration::from_secs(120),
        ..ServeConfig::default()
    }
}

/// A short real experiment (tiny geometry + trace keeps it milliseconds).
const SMALL_RUN: &[u8] =
    br#"{"benchmark": "mcf", "scheme": "lru", "sets": 64, "ways": 4, "accesses": 5000}"#;

/// Extracts the value of a single-valued metric line from `/metrics`.
fn metric(page: &str, name: &str) -> u64 {
    page.lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .unwrap_or_else(|| panic!("metric {name} missing from:\n{page}"))
        .trim()
        .parse()
        .expect("metric value parses")
}

#[test]
fn identical_requests_get_byte_identical_bodies_at_any_thread_count() {
    let mut bodies = Vec::new();
    for threads in [1usize, 4] {
        let (listener, connector) = duplex_transport();
        let config = ServeConfig {
            threads,
            ..small_config()
        };
        let handle = service::start(Box::new(listener), config);
        // Same experiment spelled two ways: different field order and
        // explicit defaults must canonicalize to the same request.
        let reordered = br#"{"accesses": 5000, "ways": 4, "scheme": "lru", "sets": 64,
                             "benchmark": "mcf", "profile": false, "line_bytes": 64,
                             "warmup_fraction": 0.2}"#;
        let a = exchange(&connector, "POST", "/run", SMALL_RUN);
        let b = exchange(&connector, "POST", "/run", reordered);
        assert_eq!(a.status, 200, "{}", a.body_text());
        assert_eq!(b.status, 200, "{}", b.body_text());
        assert_eq!(a.body, b.body, "field order must not change the bytes");
        bodies.push(a.body);
        handle.shutdown();
        handle.join();
    }
    assert_eq!(
        bodies[0], bodies[1],
        "thread count must not change the bytes"
    );
}

#[test]
fn repeated_request_is_served_from_the_cache_without_rerunning() {
    let (listener, connector) = duplex_transport();
    let handle = service::start(Box::new(listener), small_config());

    let first = exchange(&connector, "POST", "/run", SMALL_RUN);
    assert_eq!(first.status, 200, "{}", first.body_text());
    let second = exchange(&connector, "POST", "/run", SMALL_RUN);
    assert_eq!(second.status, 200);
    assert_eq!(first.body, second.body, "cache must replay stored bytes");

    let page = exchange(&connector, "GET", "/metrics", b"").body_text();
    assert_eq!(
        metric(&page, "stem_serve_sim_executions_total"),
        1,
        "the second request must not re-run the simulation:\n{page}"
    );
    assert_eq!(metric(&page, "stem_serve_cache_hits_total"), 1);
    assert_eq!(metric(&page, "stem_serve_cache_misses_total"), 1);

    // The handle's metrics view is the same object the routes render.
    assert_eq!(handle.metrics().sim_executions(), 1);
    assert_eq!(handle.metrics().cache_hits(), 1);

    handle.shutdown();
    handle.join();
}

/// The sampled-fidelity twin of [`SMALL_RUN`] (same experiment, sampled
/// tier).
const SMALL_RUN_SAMPLED: &[u8] = br#"{"benchmark": "mcf", "scheme": "lru", "sets": 64, "ways": 4,
     "accesses": 5000, "fidelity": "sampled", "sample_rate": 4}"#;

#[test]
fn sampled_and_exact_requests_never_share_a_cache_entry() {
    // The tentpole's cache-canonicalization invariant, end to end: two
    // requests differing only in fidelity must hash to distinct keys,
    // run as distinct experiments, and never serve each other's bytes —
    // while each remains a byte-stable cache hit for its own repeats.
    let (listener, connector) = duplex_transport();
    let handle = service::start(Box::new(listener), small_config());

    let exact = exchange(&connector, "POST", "/run", SMALL_RUN);
    let sampled = exchange(&connector, "POST", "/run", SMALL_RUN_SAMPLED);
    assert_eq!(exact.status, 200, "{}", exact.body_text());
    assert_eq!(sampled.status, 200, "{}", sampled.body_text());
    assert_ne!(
        exact.body, sampled.body,
        "fidelity tiers must not alias in the cache"
    );
    assert!(exact.body_text().contains("\"metrics\""));
    assert!(sampled.body_text().contains("\"sampled_metrics\""));
    assert!(
        sampled.body_text().contains("\"scale_factor\""),
        "{}",
        sampled.body_text()
    );

    // Repeats are pure cache hits with byte-identical bodies per tier.
    let exact2 = exchange(&connector, "POST", "/run", SMALL_RUN);
    let sampled2 = exchange(&connector, "POST", "/run", SMALL_RUN_SAMPLED);
    assert_eq!(exact.body, exact2.body);
    assert_eq!(sampled.body, sampled2.body);

    let page = exchange(&connector, "GET", "/metrics", b"").body_text();
    assert_eq!(
        metric(&page, "stem_serve_sim_executions_total"),
        2,
        "one execution per fidelity tier:\n{page}"
    );
    assert_eq!(metric(&page, "stem_serve_cache_hits_total"), 2);
    assert_eq!(metric(&page, "stem_serve_cache_misses_total"), 2);
    assert_eq!(
        metric(&page, "stem_serve_sampled_requests_total"),
        2,
        "both sampled requests (miss and hit) must be counted:\n{page}"
    );

    handle.shutdown();
    handle.join();
}

/// The profile twin of [`SMALL_RUN`]: it measures something extra (the
/// §3.1 capacity profile) over the *same* warm prefix — same benchmark,
/// scheme, geometry, accesses, and warmup fraction.
const SMALL_RUN_PROFILE: &[u8] = br#"{"benchmark": "mcf", "scheme": "lru", "sets": 64, "ways": 4,
     "accesses": 5000, "profile": true}"#;

/// Extracts the rendered `"mpki": <value>` fragment of a response body.
fn mpki_of(body: &str) -> &str {
    let start = body.find("\"mpki\":").expect("mpki present");
    let rest = &body[start..];
    let end = rest.find([',', '}']).expect("mpki terminated");
    &rest[..end]
}

#[test]
fn warm_prefix_sharers_hit_the_snapshot_cache_but_never_the_result_cache() {
    // Two requests that measure different things (one wants the §3.1
    // profile) but share a warm prefix: the second restores the first's
    // warmed state instead of re-replaying it. The snapshot cache is a
    // pure accelerator — the result cache still sees two distinct
    // entries, the bodies never alias, and the metric triple is
    // identical because the restored state is exact.
    let (listener, connector) = duplex_transport();
    let handle = service::start(Box::new(listener), small_config());

    let plain = exchange(&connector, "POST", "/run", SMALL_RUN);
    let profiled = exchange(&connector, "POST", "/run", SMALL_RUN_PROFILE);
    assert_eq!(plain.status, 200, "{}", plain.body_text());
    assert_eq!(profiled.status, 200, "{}", profiled.body_text());
    assert_ne!(plain.body, profiled.body, "profile must change the body");
    assert!(profiled.body_text().contains("\"capacity_profile\""));
    assert_eq!(
        mpki_of(&plain.body_text()),
        mpki_of(&profiled.body_text()),
        "restoring the warm prefix must not perturb the measurement"
    );

    let page = exchange(&connector, "GET", "/metrics", b"").body_text();
    assert_eq!(metric(&page, "stem_serve_sim_executions_total"), 2);
    assert_eq!(
        metric(&page, "stem_serve_cache_hits_total"),
        0,
        "a snapshot hit is not a result-cache hit:\n{page}"
    );
    assert_eq!(metric(&page, "stem_serve_cache_misses_total"), 2);
    assert_eq!(metric(&page, "stem_serve_snapshot_misses_total"), 1);
    assert_eq!(
        metric(&page, "stem_serve_snapshot_hits_total"),
        1,
        "the profile twin must restore the warmed snapshot:\n{page}"
    );

    // Repeats of either variant are still plain result-cache hits that
    // never consult the snapshot store again.
    let plain2 = exchange(&connector, "POST", "/run", SMALL_RUN);
    assert_eq!(plain.body, plain2.body);
    let page = exchange(&connector, "GET", "/metrics", b"").body_text();
    assert_eq!(metric(&page, "stem_serve_cache_hits_total"), 1);
    assert_eq!(metric(&page, "stem_serve_snapshot_hits_total"), 1);

    handle.shutdown();
    handle.join();
}

#[test]
fn disabling_the_snapshot_cache_never_changes_the_bytes() {
    // snapshot_slots: 0 swaps in the plain executor; every byte of every
    // response must be identical either way — the cache only removes
    // redundant warm-replay work, never alters what is measured.
    let mut bodies = Vec::new();
    for slots in [0usize, 16] {
        let (listener, connector) = duplex_transport();
        let config = ServeConfig {
            snapshot_slots: slots,
            ..small_config()
        };
        let handle = service::start(Box::new(listener), config);
        let plain = exchange(&connector, "POST", "/run", SMALL_RUN);
        let profiled = exchange(&connector, "POST", "/run", SMALL_RUN_PROFILE);
        assert_eq!(plain.status, 200, "{}", plain.body_text());
        assert_eq!(profiled.status, 200, "{}", profiled.body_text());

        let page = exchange(&connector, "GET", "/metrics", b"").body_text();
        let expected_hits = if slots == 0 { 0 } else { 1 };
        assert_eq!(
            metric(&page, "stem_serve_snapshot_hits_total"),
            expected_hits,
            "slots={slots}:\n{page}"
        );
        bodies.push((plain.body, profiled.body));
        handle.shutdown();
        handle.join();
    }
    assert_eq!(
        bodies[0], bodies[1],
        "snapshot restore must be invisible in the response bytes"
    );
}

#[test]
fn sampled_requests_for_global_state_schemes_are_rejected() {
    let (listener, connector) = duplex_transport();
    let handle = service::start(Box::new(listener), small_config());
    let body = br#"{"benchmark": "mcf", "scheme": "stem", "fidelity": "sampled"}"#;
    let resp = exchange(&connector, "POST", "/run", body);
    assert_eq!(resp.status, 400, "{}", resp.body_text());
    assert!(
        resp.body_text().contains("eligible schemes"),
        "{}",
        resp.body_text()
    );
    // A rejected request never reaches the executor or the sampled
    // counter (which counts *valid* sampled requests).
    assert_eq!(handle.metrics().sim_executions(), 0);
    assert_eq!(handle.metrics().sampled_requests(), 0);
    handle.shutdown();
    handle.join();
}

/// An injectable executor that signals when a cell starts and then blocks
/// until released, making queue-saturation timing deterministic.
fn blocking_executor() -> (Executor, mpsc::Receiver<()>, mpsc::Sender<()>) {
    let (started_tx, started_rx) = mpsc::channel::<()>();
    let (release_tx, release_rx) = mpsc::channel::<()>();
    let release_rx = Arc::new(Mutex::new(release_rx));
    let executor: Executor = Arc::new(move |req| {
        started_tx.send(()).expect("test listens for starts");
        release_rx
            .lock()
            .expect("release lock")
            .recv()
            .expect("test releases every started cell");
        Ok(Json::Obj(vec![(
            "echo".to_owned(),
            Json::str(req.benchmark.clone()),
        )]))
    });
    (executor, started_rx, release_tx)
}

#[test]
fn saturating_a_one_slot_queue_returns_429() {
    let (listener, connector) = duplex_transport();
    let config = ServeConfig {
        queue_capacity: 1,
        threads: 1,
        ..small_config()
    };
    let (executor, started_rx, release_tx) = blocking_executor();
    let handle = service::start_with_executor(Box::new(listener), config, executor);

    let run_body = |bench: &str| {
        format!(r#"{{"benchmark": "{bench}", "scheme": "lru", "accesses": 1000}}"#).into_bytes()
    };

    // Job A: picked up by the executor, which blocks inside the cell.
    let conn_a = connector.clone();
    let body_a = run_body("mcf");
    let t_a = std::thread::spawn(move || exchange(&conn_a, "POST", "/run", &body_a));
    started_rx
        .recv_timeout(Duration::from_secs(10))
        .expect("job A reaches the executor");

    // Job B: occupies the single queue slot.
    let conn_b = connector.clone();
    let body_b = run_body("art");
    let t_b = std::thread::spawn(move || exchange(&conn_b, "POST", "/run", &body_b));
    // B is accepted the moment its handler enqueues it; wait for that
    // rather than sleeping.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while handle
        .metrics()
        .render()
        .contains("stem_serve_queue_depth 0")
    {
        assert!(
            std::time::Instant::now() < deadline,
            "job B never reached the queue"
        );
        std::thread::yield_now();
    }

    // Job C: queue full → immediate 429, no waiting — and a
    // deterministic Retry-After derived from the queue depth (B is the
    // one queued job, so 1 + 1 = 2 seconds).
    let c = exchange(&connector, "POST", "/run", &run_body("twolf"));
    assert_eq!(c.status, 429, "{}", c.body_text());
    assert!(c.body_text().contains("queue is full"), "{}", c.body_text());
    assert_eq!(
        c.retry_after_secs(),
        Some(2),
        "429 must carry Retry-After = queue depth + 1; headers: {:?}",
        c.headers
    );
    assert_eq!(handle.metrics().rejections(), 1);

    // Release A and B; both must complete normally despite the flood.
    release_tx.send(()).expect("release A");
    release_tx.send(()).expect("release B");
    let a = t_a.join().expect("A thread");
    let b = t_b.join().expect("B thread");
    assert_eq!(a.status, 200, "{}", a.body_text());
    assert_eq!(b.status, 200, "{}", b.body_text());
    assert!(a.body_text().contains("mcf"));
    assert!(b.body_text().contains("art"));

    handle.shutdown();
    handle.join();
}

#[test]
fn invalid_requests_are_rejected_with_400_and_a_reason() {
    let (listener, connector) = duplex_transport();
    let handle = service::start(Box::new(listener), small_config());

    let cases: &[(&[u8], &str)] = &[
        (b"{oops", "invalid JSON"),
        (b"[]", "object"),
        (br#"{"benchmark": "mcf"}"#, "scheme"),
        (
            br#"{"benchmark": "mcf", "scheme": "lru", "turbo": 9}"#,
            "unknown field",
        ),
        (
            br#"{"benchmark": "nope", "scheme": "lru"}"#,
            "unknown benchmark",
        ),
        (
            br#"{"benchmark": "mcf", "scheme": "lru", "sets": 999}"#,
            "power of two",
        ),
    ];
    for (body, needle) in cases {
        let resp = exchange(&connector, "POST", "/run", body);
        assert_eq!(resp.status, 400, "{}", resp.body_text());
        assert!(
            resp.body_text().contains(needle),
            "{} → {}",
            String::from_utf8_lossy(body),
            resp.body_text()
        );
    }

    assert_eq!(exchange(&connector, "GET", "/run", b"").status, 405);
    assert_eq!(exchange(&connector, "POST", "/healthz", b"").status, 405);
    assert_eq!(exchange(&connector, "GET", "/nowhere", b"").status, 404);

    // None of the rejects should have executed anything.
    assert_eq!(handle.metrics().sim_executions(), 0);
    handle.shutdown();
    handle.join();
}

#[test]
fn healthz_reports_ok() {
    let (listener, connector) = duplex_transport();
    let handle = service::start(Box::new(listener), small_config());
    let resp = exchange(&connector, "GET", "/healthz", b"");
    assert_eq!(resp.status, 200);
    assert!(resp.body_text().contains("\"ok\""));
    handle.shutdown();
    handle.join();
}

#[test]
fn shutdown_over_http_drains_gracefully() {
    let (listener, connector) = duplex_transport();
    let handle = service::start(Box::new(listener), small_config());

    // Some in-flight work first, so the drain has something to finish.
    let warm = exchange(&connector, "POST", "/run", SMALL_RUN);
    assert_eq!(warm.status, 200, "{}", warm.body_text());

    let resp = exchange(&connector, "POST", "/shutdown", b"");
    assert_eq!(resp.status, 200);
    assert!(resp.body_text().contains("draining"));
    assert!(handle.is_stopping());
    handle.join();

    // The listener is gone: new connections are refused.
    connector
        .connect()
        .expect_err("connect after drain must fail");
}

/// A 2-core shared-LLC mix at test scale (tiny geometry + short traces).
const SMALL_RUN_MIX: &[u8] = br#"{"mix": [{"benchmark": "omnetpp"}, {"benchmark": "gromacs"}],
     "scheme": "lru", "sets": 64, "ways": 8, "accesses": 8000}"#;

#[test]
fn mix_requests_cache_and_stay_byte_identical_across_thread_counts() {
    // The mix acceptance invariant end to end: a 2-core mix through
    // `/run` returns per-core metrics plus fairness/weighted-speedup,
    // and the body is byte-identical across thread counts, across
    // spellings (explicit defaults), and across cache hit vs miss.
    let mut bodies = Vec::new();
    for threads in [1usize, 4] {
        let (listener, connector) = duplex_transport();
        let config = ServeConfig {
            threads,
            ..small_config()
        };
        let handle = service::start(Box::new(listener), config);
        let explicit = br#"{"mix": [{"benchmark": "omnetpp", "weight": 1.0},
                                    {"benchmark": "gromacs", "weight": 1.0}],
                            "mix_seed": 0, "scheme": "lru", "sets": 64, "ways": 8,
                            "accesses": 8000}"#;
        let a = exchange(&connector, "POST", "/run", SMALL_RUN_MIX);
        let b = exchange(&connector, "POST", "/run", explicit);
        assert_eq!(a.status, 200, "{}", a.body_text());
        assert_eq!(b.status, 200, "{}", b.body_text());
        assert_eq!(
            a.body, b.body,
            "spelling and cache state must not change the bytes"
        );
        let text = a.body_text();
        for needle in [
            "\"mix_metrics\"",
            "\"weighted_speedup\"",
            "\"fairness\"",
            "\"per_core\"",
            "\"mpki\"",
            "omnetpp",
            "gromacs",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }

        let page = exchange(&connector, "GET", "/metrics", b"").body_text();
        assert_eq!(
            metric(&page, "stem_serve_sim_executions_total"),
            1,
            "the second spelling must be a pure cache hit:\n{page}"
        );
        assert_eq!(metric(&page, "stem_serve_cache_hits_total"), 1);
        assert_eq!(
            metric(&page, "stem_serve_mix_requests_total"),
            2,
            "both mix requests (miss and hit) must be counted:\n{page}"
        );
        bodies.push(a.body);
        handle.shutdown();
        handle.join();
    }
    assert_eq!(
        bodies[0], bodies[1],
        "thread count must not change the bytes"
    );
}
