//! Deterministic chaos injection for the serving stack.
//!
//! [`ChaosTransport`] wraps any [`Transport`] and mangles the byte
//! streams the service sees, driven entirely by a seeded [`SplitMix64`]
//! plan: partial/split reads and writes, inbound byte truncation,
//! garbage prefixes, injected delays, mid-body connection resets, and a
//! slow-loris drip that feeds the parser one byte at a time. Every fault
//! is a pure function of `(seed, connection index)` — the same seed
//! replays the same storm, byte for byte, which is what lets the chaos
//! campaign in `tests/chaos.rs` assert *exact* outcomes (zero panics,
//! byte-identical healthy responses) instead of "it probably survived".
//!
//! The plan deliberately mangles only the **inbound** side of chaotic
//! connections plus their write pacing; connections the plan marks
//! healthy are perfect pass-throughs. Tests drive connections serially,
//! so the connector-side index matches the accept-side index and a test
//! can compute [`ConnPlan::for_connection`] itself to know which
//! connections must succeed verbatim.
//!
//! Injected delays are small (single-digit milliseconds) and capped per
//! connection ([`ConnPlan::DELAY_BUDGET`]), so a hundreds-of-connections
//! campaign stays in CI-smoke territory while still overrunning the
//! service's per-connection I/O deadline on the slow-loris plans.

use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use stem_sim_core::SplitMix64;

use crate::metrics::Metrics;
use crate::transport::{Connection, Transport};

/// The fault profile a chaotic connection runs. One profile per
/// connection keeps campaigns interpretable: a failure names the exact
/// `(seed, index, profile)` triple that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultProfile {
    /// Reads are split into 1–7 byte fragments; writes into 1–63 bytes.
    SplitIo,
    /// Random bytes arrive before the real request.
    GarbagePrefix,
    /// The inbound stream reports EOF partway through the request.
    TruncateInbound,
    /// The inbound stream errors `ConnectionReset` partway through.
    ResetInbound,
    /// Outbound writes error `ConnectionReset` partway through.
    ResetOutbound,
    /// One inbound byte per read, each after a small sleep — the classic
    /// slow-loris; the service's I/O deadline must cut it off.
    SlowLoris,
    /// Small deterministic sleeps before reads and writes.
    DelayJitter,
}

impl FaultProfile {
    /// All profiles, in plan-selection order.
    pub const ALL: [FaultProfile; 7] = [
        FaultProfile::SplitIo,
        FaultProfile::GarbagePrefix,
        FaultProfile::TruncateInbound,
        FaultProfile::ResetInbound,
        FaultProfile::ResetOutbound,
        FaultProfile::SlowLoris,
        FaultProfile::DelayJitter,
    ];

    /// The `kind` label under `stem_serve_chaos_faults_total`.
    pub fn label(self) -> &'static str {
        match self {
            FaultProfile::SplitIo => "split_io",
            FaultProfile::GarbagePrefix => "garbage_prefix",
            FaultProfile::TruncateInbound => "truncate_inbound",
            FaultProfile::ResetInbound => "reset_inbound",
            FaultProfile::ResetOutbound => "reset_outbound",
            FaultProfile::SlowLoris => "slow_loris",
            FaultProfile::DelayJitter => "delay_jitter",
        }
    }
}

/// The complete, deterministic fault plan for one connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConnPlan {
    /// `None` = healthy pass-through connection.
    pub profile: Option<FaultProfile>,
    /// Max bytes returned per inbound read (`usize::MAX` = unlimited).
    pub read_chunk_cap: usize,
    /// Max bytes accepted per outbound write.
    pub write_chunk_cap: usize,
    /// Sleep before every inbound read.
    pub read_delay: Duration,
    /// Sleep before every outbound write.
    pub write_delay: Duration,
    /// Bytes prepended to the inbound stream before any real data.
    pub garbage_prefix: Vec<u8>,
    /// Inbound EOF after this many real bytes.
    pub truncate_inbound_after: u64,
    /// Inbound `ConnectionReset` after this many bytes.
    pub reset_inbound_after: u64,
    /// Outbound `ConnectionReset` after this many bytes.
    pub reset_outbound_after: u64,
}

impl ConnPlan {
    /// Ceiling on total injected sleep per connection, so a chaotic
    /// campaign cannot stretch wall-clock unboundedly.
    pub const DELAY_BUDGET: Duration = Duration::from_millis(400);

    /// Out of [`PLAN_MODULUS`](Self::PLAN_MODULUS) connections, how many
    /// draw a fault profile (the rest are healthy pass-throughs).
    pub const CHAOTIC_PER_MODULUS: u64 = 2;

    /// The chaotic-fraction denominator: 2 in 5 connections misbehave.
    pub const PLAN_MODULUS: u64 = 5;

    /// The identity plan: a perfect pass-through with no faults.
    pub fn healthy() -> ConnPlan {
        ConnPlan {
            profile: None,
            read_chunk_cap: usize::MAX,
            write_chunk_cap: usize::MAX,
            read_delay: Duration::ZERO,
            write_delay: Duration::ZERO,
            garbage_prefix: Vec::new(),
            truncate_inbound_after: u64::MAX,
            reset_inbound_after: u64::MAX,
            reset_outbound_after: u64::MAX,
        }
    }

    /// Derives the plan for connection number `index` (accept order,
    /// 0-based) under `seed`. Pure: transports and tests call the same
    /// function and agree on every byte.
    pub fn for_connection(seed: u64, index: u64) -> ConnPlan {
        // Feed the index through the generator state rather than xor'ing
        // it into the seed, so plans for adjacent indices share nothing.
        let mut rng = SplitMix64::new(seed.wrapping_add(index.wrapping_mul(0x9E37_79B9)));
        let healthy = ConnPlan::healthy();
        if rng.next_below(Self::PLAN_MODULUS) >= Self::CHAOTIC_PER_MODULUS {
            return healthy;
        }
        let profile = FaultProfile::ALL[rng.next_below(FaultProfile::ALL.len() as u64) as usize];
        let mut plan = ConnPlan {
            profile: Some(profile),
            ..healthy
        };
        match profile {
            FaultProfile::SplitIo => {
                plan.read_chunk_cap = 1 + rng.next_below(7) as usize;
                plan.write_chunk_cap = 1 + rng.next_below(63) as usize;
            }
            FaultProfile::GarbagePrefix => {
                let len = 1 + rng.next_below(48) as usize;
                plan.garbage_prefix = (0..len).map(|_| rng.next_u64() as u8).collect();
            }
            FaultProfile::TruncateInbound => {
                plan.truncate_inbound_after = 1 + rng.next_below(96);
            }
            FaultProfile::ResetInbound => {
                plan.reset_inbound_after = 1 + rng.next_below(96);
            }
            FaultProfile::ResetOutbound => {
                plan.reset_outbound_after = 1 + rng.next_below(64);
            }
            FaultProfile::SlowLoris => {
                plan.read_chunk_cap = 1;
                plan.read_delay = Duration::from_millis(2 + rng.next_below(3));
            }
            FaultProfile::DelayJitter => {
                plan.read_delay = Duration::from_millis(1 + rng.next_below(3));
                plan.write_delay = Duration::from_millis(1 + rng.next_below(3));
            }
        }
        plan
    }

    /// Whether this connection is a perfect pass-through.
    pub fn is_passthrough(&self) -> bool {
        self.profile.is_none()
    }
}

/// A [`Connection`] (or any `Read + Write` stream) filtered through a
/// [`ConnPlan`]. Generic so the HTTP property tests can chaos-wrap plain
/// in-memory cursors, not just live transport connections.
#[derive(Debug)]
pub struct ChaosConn<C> {
    inner: C,
    plan: ConnPlan,
    read_bytes: u64,
    written_bytes: u64,
    slept: Duration,
    /// Garbage bytes not yet delivered to the reader.
    pending_garbage: usize,
}

impl<C> ChaosConn<C> {
    /// Wraps `inner` under `plan`.
    pub fn new(inner: C, plan: ConnPlan) -> Self {
        let pending_garbage = plan.garbage_prefix.len();
        ChaosConn {
            inner,
            plan,
            read_bytes: 0,
            written_bytes: 0,
            slept: Duration::ZERO,
            pending_garbage,
        }
    }

    /// The plan this connection runs.
    pub fn plan(&self) -> &ConnPlan {
        &self.plan
    }

    /// Sleeps `d`, but never past the per-connection delay budget.
    fn throttled_sleep(&mut self, d: Duration) {
        if d.is_zero() {
            return;
        }
        let remaining = ConnPlan::DELAY_BUDGET.saturating_sub(self.slept);
        let d = d.min(remaining);
        if !d.is_zero() {
            std::thread::sleep(d);
            self.slept += d;
        }
    }
}

fn reset_err(direction: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::ConnectionReset,
        format!("chaos: injected {direction} connection reset"),
    )
}

impl<C: Read> Read for ChaosConn<C> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let delay = self.plan.read_delay;
        self.throttled_sleep(delay);
        // Garbage first: the parser must choke on it before seeing the
        // real request.
        if self.pending_garbage > 0 {
            let offset = self.plan.garbage_prefix.len() - self.pending_garbage;
            let n = buf
                .len()
                .min(self.pending_garbage)
                .min(self.plan.read_chunk_cap);
            buf[..n].copy_from_slice(&self.plan.garbage_prefix[offset..offset + n]);
            self.pending_garbage -= n;
            return Ok(n);
        }
        if self.read_bytes >= self.plan.reset_inbound_after {
            return Err(reset_err("inbound"));
        }
        if self.read_bytes >= self.plan.truncate_inbound_after {
            return Ok(0); // premature clean EOF
        }
        let remaining_before_fault = self
            .plan
            .reset_inbound_after
            .min(self.plan.truncate_inbound_after)
            .saturating_sub(self.read_bytes);
        let cap = buf
            .len()
            .min(self.plan.read_chunk_cap)
            .min(usize::try_from(remaining_before_fault).unwrap_or(usize::MAX));
        let n = self.inner.read(&mut buf[..cap])?;
        self.read_bytes += n as u64;
        Ok(n)
    }
}

impl<C: Write> Write for ChaosConn<C> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let delay = self.plan.write_delay;
        self.throttled_sleep(delay);
        if self.written_bytes >= self.plan.reset_outbound_after {
            return Err(reset_err("outbound"));
        }
        let remaining_before_fault = self
            .plan
            .reset_outbound_after
            .saturating_sub(self.written_bytes);
        let cap = buf
            .len()
            .min(self.plan.write_chunk_cap)
            .min(usize::try_from(remaining_before_fault).unwrap_or(usize::MAX));
        let n = self.inner.write(&buf[..cap])?;
        self.written_bytes += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

impl<C: Connection> Connection for ChaosConn<C> {}

/// A [`Transport`] decorator: every accepted connection is wrapped in the
/// [`ConnPlan`] its accept-order index draws from the seed. Faults are
/// counted into the service [`Metrics`] (rendered as
/// `stem_serve_chaos_connections_total` / `stem_serve_chaos_faults_total`)
/// when a metrics handle is attached.
pub struct ChaosTransport<T> {
    inner: T,
    seed: u64,
    accepted: AtomicU64,
    metrics: Option<Arc<Metrics>>,
}

impl<T: Transport> ChaosTransport<T> {
    /// Wraps `inner`, mangling connections under `seed`.
    pub fn new(inner: T, seed: u64) -> Self {
        ChaosTransport {
            inner,
            seed,
            accepted: AtomicU64::new(0),
            metrics: None,
        }
    }

    /// Attaches the metrics sink that counts chaotic connections and
    /// injected fault profiles. Pass the same [`Metrics`] handed to
    /// [`ServeConfig::metrics`](crate::service::ServeConfig::metrics) so
    /// the counters surface on `/metrics`.
    pub fn with_metrics(mut self, metrics: Arc<Metrics>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// The chaos seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

impl<T: Transport> Transport for ChaosTransport<T> {
    fn accept(&self) -> io::Result<Option<Box<dyn Connection>>> {
        let Some(conn) = self.inner.accept()? else {
            return Ok(None);
        };
        let index = self.accepted.fetch_add(1, Ordering::SeqCst);
        let plan = ConnPlan::for_connection(self.seed, index);
        if let (Some(metrics), Some(profile)) = (&self.metrics, plan.profile) {
            metrics.chaos_connection(profile.label());
        }
        if plan.is_passthrough() {
            return Ok(Some(conn));
        }
        Ok(Some(Box::new(ChaosConn::new(conn, plan))))
    }

    fn endpoint(&self) -> String {
        format!("{}+chaos(seed={:#x})", self.inner.endpoint(), self.seed)
    }
}

/// The shared campaign driver: drives a scripted mix of healthy and
/// chaotic connections against a service listening on an in-memory
/// duplex transport. Used by both the `tests/chaos.rs` campaign and the
/// `chaos_smoke` CI binary, so the smoke stage exercises exactly the
/// traffic shape the test suite pins down.
pub mod campaign {
    use std::collections::BTreeMap;
    use std::time::Duration;

    use super::ConnPlan;
    use crate::http::{read_response_deadline, write_request, Deadline};
    use crate::transport::DuplexConnector;

    /// What one campaign run observed.
    #[derive(Debug)]
    pub struct CampaignOutcome {
        /// Connections the plan marked healthy (pass-through).
        pub healthy_planned: usize,
        /// Healthy connections that returned HTTP 200.
        pub healthy_ok: usize,
        /// Response bodies of healthy connections, keyed by connection
        /// index — the cross-seed byte-identity assertion compares these
        /// maps wholesale.
        pub bodies: BTreeMap<u64, Vec<u8>>,
        /// Connections the plan marked chaotic.
        pub chaotic: usize,
        /// Human-readable description of every healthy-connection
        /// violation (must be empty for a passing campaign).
        pub failures: Vec<String>,
    }

    /// The request script for connection `index`: every seventh
    /// connection probes `/healthz`, the rest POST `/run` cycling through
    /// `run_bodies`. Deterministic in `index`, so the same connection
    /// sends the same request in every campaign run.
    pub fn scripted_request(
        index: u64,
        run_bodies: &[String],
    ) -> (&'static str, &'static str, String) {
        if index % 7 == 3 {
            ("GET", "/healthz", String::new())
        } else {
            let body = run_bodies[(index as usize) % run_bodies.len()].clone();
            ("POST", "/run", body)
        }
    }

    /// Drives `connections` serial connections through `connector`
    /// (serial, so connect order equals accept order and `plan_seed`
    /// bookkeeping matches the server-side [`super::ChaosTransport`]).
    /// Healthy connections must answer 200 within `healthy_deadline`;
    /// chaotic connections get `chaotic_deadline` of patience and any
    /// outcome is accepted — the invariants they probe (no panic, no
    /// hang) are asserted on the server's metrics afterwards.
    pub fn drive(
        connector: &DuplexConnector,
        plan_seed: u64,
        connections: u64,
        run_bodies: &[String],
        healthy_deadline: Duration,
        chaotic_deadline: Duration,
    ) -> CampaignOutcome {
        assert!(!run_bodies.is_empty(), "campaign needs request bodies");
        let mut outcome = CampaignOutcome {
            healthy_planned: 0,
            healthy_ok: 0,
            bodies: BTreeMap::new(),
            chaotic: 0,
            failures: Vec::new(),
        };
        for index in 0..connections {
            let plan = ConnPlan::for_connection(plan_seed, index);
            let healthy = plan.is_passthrough();
            if healthy {
                outcome.healthy_planned += 1;
            } else {
                outcome.chaotic += 1;
            }
            let (method, path, body) = scripted_request(index, run_bodies);
            let mut conn = match connector.connect() {
                Ok(c) => c,
                Err(e) => {
                    if healthy {
                        outcome
                            .failures
                            .push(format!("conn {index}: connect failed: {e}"));
                    }
                    continue;
                }
            };
            if let Err(e) = write_request(&mut conn, method, path, body.as_bytes()) {
                if healthy {
                    outcome
                        .failures
                        .push(format!("conn {index}: write failed: {e}"));
                }
                continue;
            }
            let deadline = Deadline::after(if healthy {
                healthy_deadline
            } else {
                chaotic_deadline
            });
            match read_response_deadline(&mut conn, deadline) {
                Ok(resp) if healthy => {
                    if resp.status == 200 {
                        outcome.healthy_ok += 1;
                        outcome.bodies.insert(index, resp.body);
                    } else {
                        outcome.failures.push(format!(
                            "conn {index}: healthy connection got HTTP {}: {}",
                            resp.status,
                            resp.body_text()
                        ));
                    }
                }
                Err(e) if healthy => {
                    outcome
                        .failures
                        .push(format!("conn {index}: healthy response unreadable: {e}"));
                }
                // Chaotic connections accept any fate.
                Ok(_) | Err(_) => {}
            }
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    /// A minimal in-memory stream: reads from a script, writes to a sink.
    struct Loop {
        rx: Cursor<Vec<u8>>,
        tx: Vec<u8>,
    }

    impl Read for Loop {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            self.rx.read(buf)
        }
    }

    impl Write for Loop {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.tx.write(buf)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn looped(inbound: &[u8]) -> Loop {
        Loop {
            rx: Cursor::new(inbound.to_vec()),
            tx: Vec::new(),
        }
    }

    #[test]
    fn plans_are_deterministic_and_seed_sensitive() {
        for index in 0..64 {
            assert_eq!(
                ConnPlan::for_connection(42, index),
                ConnPlan::for_connection(42, index),
            );
        }
        let differs = (0..64).any(|i| {
            ConnPlan::for_connection(1, i).profile != ConnPlan::for_connection(2, i).profile
        });
        assert!(differs, "different seeds must draw different storms");
    }

    #[test]
    fn every_profile_appears_within_a_few_hundred_connections() {
        let mut seen = std::collections::BTreeSet::new();
        let mut healthy = 0u32;
        for i in 0..400 {
            match ConnPlan::for_connection(7, i).profile {
                Some(p) => {
                    seen.insert(p.label());
                }
                None => healthy += 1,
            }
        }
        assert_eq!(seen.len(), FaultProfile::ALL.len(), "seen: {seen:?}");
        assert!(
            healthy > 100,
            "healthy connections must dominate: {healthy}"
        );
    }

    #[test]
    fn passthrough_plan_does_not_alter_bytes() {
        let plan = ConnPlan {
            profile: None,
            ..ConnPlan::for_connection(0, 0)
        };
        let mut conn = ChaosConn::new(looped(b"hello"), plan);
        let mut out = Vec::new();
        conn.read_to_end(&mut out).expect("read");
        assert_eq!(out, b"hello");
        conn.write_all(b"world").expect("write");
        assert_eq!(conn.inner.tx, b"world");
    }

    #[test]
    fn garbage_prefix_arrives_before_real_data() {
        let mut plan = ConnPlan::for_connection(0, 0);
        plan.profile = Some(FaultProfile::GarbagePrefix);
        plan.garbage_prefix = vec![0xde, 0xad];
        let mut conn = ChaosConn::new(looped(b"real"), plan);
        let mut out = Vec::new();
        conn.read_to_end(&mut out).expect("read");
        assert_eq!(out, &[0xde, 0xad, b'r', b'e', b'a', b'l']);
    }

    #[test]
    fn truncation_yields_early_eof_and_reset_yields_error() {
        let mut plan = ConnPlan::for_connection(0, 0);
        plan.truncate_inbound_after = 3;
        let mut conn = ChaosConn::new(looped(b"abcdef"), plan);
        let mut out = Vec::new();
        conn.read_to_end(&mut out)
            .expect("truncated read is clean EOF");
        assert_eq!(out, b"abc");

        let mut plan = ConnPlan::for_connection(0, 0);
        plan.reset_inbound_after = 2;
        let mut conn = ChaosConn::new(looped(b"abcdef"), plan);
        let mut out = Vec::new();
        let err = conn.read_to_end(&mut out).expect_err("reset");
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        assert_eq!(out, b"ab", "bytes before the reset still arrive");
    }

    #[test]
    fn split_reads_cap_every_chunk_but_lose_nothing() {
        let mut plan = ConnPlan::for_connection(0, 0);
        plan.read_chunk_cap = 2;
        let mut conn = ChaosConn::new(looped(b"abcdefg"), plan);
        let mut buf = [0u8; 16];
        let mut total = Vec::new();
        loop {
            let n = conn.read(&mut buf).expect("read");
            if n == 0 {
                break;
            }
            assert!(n <= 2, "chunk cap violated: {n}");
            total.extend_from_slice(&buf[..n]);
        }
        assert_eq!(total, b"abcdefg");
    }

    #[test]
    fn outbound_reset_cuts_writes_mid_body() {
        let mut plan = ConnPlan::for_connection(0, 0);
        plan.reset_outbound_after = 4;
        let mut conn = ChaosConn::new(looped(b""), plan);
        conn.write_all(b"abcd").expect("first four bytes fit");
        let err = conn.write_all(b"e").expect_err("fifth byte resets");
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        assert_eq!(conn.inner.tx, b"abcd");
    }

    #[test]
    fn delay_budget_caps_total_injected_sleep() {
        let mut plan = ConnPlan::for_connection(0, 0);
        plan.read_chunk_cap = 1;
        plan.read_delay = Duration::from_millis(200);
        let inbound = vec![b'x'; 64];
        let mut conn = ChaosConn::new(looped(&inbound), plan);
        let t0 = std::time::Instant::now();
        let mut out = Vec::new();
        conn.read_to_end(&mut out).expect("read");
        assert_eq!(out.len(), 64);
        let elapsed = t0.elapsed();
        assert!(
            elapsed < ConnPlan::DELAY_BUDGET + Duration::from_millis(500),
            "delay budget exceeded: {elapsed:?}"
        );
    }
}
