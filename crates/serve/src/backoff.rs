//! Client-side retry pacing: capped exponential backoff with
//! deterministic jitter.
//!
//! `serve_client` retries a request after 429 (queue full), 503 (shed or
//! draining), or a failed connect. Naive fixed-delay retries from many
//! clients re-collide on every attempt; exponential backoff with jitter
//! spreads them out. The jitter here is *deterministic* — drawn from the
//! repo's [`SplitMix64`] seeded by the caller — so a retry schedule is
//! reproducible from its seed, the same property the chaos layer and the
//! simulators rely on everywhere else.
//!
//! The shape is "equal jitter": attempt `k` sleeps
//! `half + uniform(0..=half)` where `half = min(cap, base << k) / 2`.
//! That keeps at least half the exponential spacing (so retries genuinely
//! back off) while randomizing the other half (so synchronized clients
//! decorrelate).

use std::time::Duration;

use stem_sim_core::SplitMix64;

/// Default base delay for the first retry.
pub const DEFAULT_BASE_MS: u64 = 50;
/// Ceiling any single delay is clamped to.
pub const CAP_MS: u64 = 5_000;
/// Default number of retries after the initial attempt.
pub const DEFAULT_RETRIES: u32 = 4;

/// A reusable description of one retry schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// Base delay in milliseconds; attempt `k` targets `base << k`.
    pub base_ms: u64,
    /// Retries after the initial attempt (0 disables retrying).
    pub retries: u32,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy {
            base_ms: DEFAULT_BASE_MS,
            retries: DEFAULT_RETRIES,
        }
    }
}

impl BackoffPolicy {
    /// The delay before retry `attempt` (0-based), jittered by `rng`.
    ///
    /// A server-supplied `Retry-After` (seconds) overrides the
    /// exponential target when it is *longer* — the server knows its
    /// queue better than the client's guess — but still gets jittered
    /// and capped so a herd told "retry after 2" does not return as a
    /// herd.
    pub fn delay(
        &self,
        attempt: u32,
        retry_after_secs: Option<u64>,
        rng: &mut SplitMix64,
    ) -> Duration {
        let exp = self
            .base_ms
            .checked_shl(attempt)
            .unwrap_or(CAP_MS)
            .min(CAP_MS);
        let target = match retry_after_secs {
            Some(secs) => exp.max(secs.saturating_mul(1000)).min(CAP_MS),
            None => exp,
        };
        let half = target / 2;
        Duration::from_millis(half + rng.next_below(half + 1))
    }

    /// The full schedule for a fixed seed — one delay per retry. Useful
    /// for logging what a client *will* do and for pinning the schedule
    /// in tests.
    pub fn schedule(&self, seed: u64) -> Vec<Duration> {
        let mut rng = SplitMix64::new(seed);
        (0..self.retries)
            .map(|k| self.delay(k, None, &mut rng))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_schedule_is_pinned_for_a_fixed_seed() {
        let policy = BackoffPolicy {
            base_ms: 100,
            retries: 5,
        };
        // Deterministic contract: this exact schedule for seed 42, or the
        // RNG/policy changed and every cached retry trace is stale.
        let a = policy.schedule(42);
        let b = policy.schedule(42);
        assert_eq!(a, b, "same seed, same schedule");
        assert_ne!(a, policy.schedule(43), "different seed, different jitter");
        for (k, d) in a.iter().enumerate() {
            let target = (100u64 << k).min(CAP_MS);
            let ms = d.as_millis() as u64;
            assert!(
                ms >= target / 2 && ms <= target,
                "retry {k}: {ms}ms outside [{}, {target}]",
                target / 2
            );
        }
        // Delays must actually grow until the cap bites.
        assert!(a[4] > a[0], "backoff never grew: {a:?}");
    }

    #[test]
    fn the_cap_holds_even_for_absurd_attempts() {
        let policy = BackoffPolicy::default();
        let mut rng = SplitMix64::new(7);
        for attempt in [10, 31, 32, 63, 64, 200] {
            let d = policy.delay(attempt, None, &mut rng);
            assert!(
                d <= Duration::from_millis(CAP_MS),
                "attempt {attempt}: {d:?}"
            );
        }
    }

    #[test]
    fn retry_after_stretches_but_never_shrinks_the_delay() {
        let policy = BackoffPolicy {
            base_ms: 1000,
            retries: 1,
        };
        // Server asks for 3s while the exponential target is 1s: honored.
        let mut rng = SplitMix64::new(1);
        let d = policy.delay(0, Some(3), &mut rng);
        assert!(d >= Duration::from_millis(1500), "{d:?}");
        // Server asks for 0s: the exponential floor still applies.
        let mut rng = SplitMix64::new(1);
        let d = policy.delay(0, Some(0), &mut rng);
        assert!(d >= Duration::from_millis(500), "{d:?}");
        // A huge Retry-After is still capped.
        let mut rng = SplitMix64::new(1);
        let d = policy.delay(0, Some(100_000), &mut rng);
        assert!(d <= Duration::from_millis(CAP_MS), "{d:?}");
    }

    #[test]
    fn zero_retries_means_an_empty_schedule() {
        let policy = BackoffPolicy {
            base_ms: 50,
            retries: 0,
        };
        assert!(policy.schedule(9).is_empty());
    }
}
