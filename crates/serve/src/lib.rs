//! `stem-serve` — the simulation-as-a-service layer.
//!
//! A long-running, std-only experiment service over the STEM
//! reproduction: clients POST a JSON experiment description ("run
//! benchmark X under scheme Y at geometry G") and receive the paper's
//! metric triple (MPKI / AMAT / CPI), raw L2 statistics, and optionally
//! the §3.1 per-set capacity-demand profile. See `DESIGN.md` §11 for the
//! architecture.
//!
//! The stack is four independently testable layers:
//!
//! * [`transport`] — where connections come from: a real
//!   `TcpListener` ([`transport::TcpTransport`]) or an in-memory duplex
//!   channel ([`transport::duplex_transport`]) so everything above it
//!   tests hermetically in-process;
//! * [`http`] — a minimal one-request-per-connection HTTP/1.1 codec;
//! * [`request`] + [`cache`] — strict validation onto the
//!   [`SimError`](stem_sim_core::SimError) taxonomy, canonicalization,
//!   FNV-1a content addressing, and a bounded LRU result cache built on
//!   the simulator's own
//!   [`RecencyStack`](stem_replacement::RecencyStack);
//! * [`service`] + [`exec`] + [`metrics`] — routing, the bounded job
//!   queue with 429 backpressure, panic/budget isolation via
//!   [`ExperimentRunner`](stem_bench::resilience::ExperimentRunner),
//!   Prometheus text metrics, and graceful drain.
//!
//! # Determinism
//!
//! Identical requests produce **byte-identical** response bodies — across
//! field order, omitted-vs-explicit defaults, thread counts, cache hits
//! and misses, and server restarts. The response is a pure function of
//! the canonical request.
//!
//! # Quickstart
//!
//! ```
//! use stem_serve::{http, service, transport};
//!
//! let (listener, connector) = transport::duplex_transport();
//! let config = service::ServeConfig {
//!     threads: 1,
//!     ..service::ServeConfig::default()
//! };
//! let handle = service::start(Box::new(listener), config);
//!
//! let mut conn = connector.connect().unwrap();
//! let body = br#"{"benchmark": "mcf", "scheme": "lru", "sets": 64, "ways": 4, "accesses": 2000}"#;
//! http::write_request(&mut conn, "POST", "/run", body).unwrap();
//! let resp = http::read_response(&mut conn).unwrap();
//! assert_eq!(resp.status, 200);
//! assert!(resp.body_text().contains("\"mpki\""));
//!
//! handle.shutdown();
//! handle.join();
//! ```

pub mod cache;
pub mod exec;
pub mod http;
pub mod metrics;
pub mod request;
pub mod service;
pub mod transport;

pub use cache::ResultCache;
pub use exec::{run_simulation, simulation_executor, Executor};
pub use metrics::Metrics;
pub use request::{fnv1a64, RunRequest};
pub use service::{start, start_with_executor, ServeConfig, ServiceHandle};
pub use transport::{duplex_transport, DuplexConnector, DuplexTransport, TcpTransport, Transport};
