//! `stem-serve` — the simulation-as-a-service layer.
//!
//! A long-running, std-only experiment service over the STEM
//! reproduction: clients POST a JSON experiment description ("run
//! benchmark X under scheme Y at geometry G") and receive the paper's
//! metric triple (MPKI / AMAT / CPI), raw L2 statistics, and optionally
//! the §3.1 per-set capacity-demand profile. A request may instead carry
//! a multi-programmed `mix` (benchmark analogs and/or ingested trace
//! files, one per core) and receive per-core solo/shared metrics plus
//! weighted speedup and fairness — see `DESIGN.md` §16. See `DESIGN.md`
//! §11 for the architecture.
//!
//! The stack is four independently testable layers:
//!
//! * [`transport`] — where connections come from: a real
//!   `TcpListener` ([`transport::TcpTransport`]) or an in-memory duplex
//!   channel ([`transport::duplex_transport`]) so everything above it
//!   tests hermetically in-process;
//! * [`http`] — a minimal one-request-per-connection HTTP/1.1 codec;
//! * [`request`] + [`cache`] — strict validation onto the
//!   [`SimError`](stem_sim_core::SimError) taxonomy, canonicalization,
//!   FNV-1a content addressing, and two bounded LRU caches built on the
//!   simulator's own [`RecencyStack`](stem_replacement::RecencyStack):
//!   response bodies ([`ResultCache`]) and warmed simulator state
//!   ([`SnapshotCache`] — exact runs sharing a warm prefix restore a
//!   checkpoint instead of re-replaying it, byte-identically);
//! * [`service`] + [`exec`] + [`metrics`] — routing, the bounded job
//!   queue with 429 backpressure, panic/budget isolation via
//!   [`ExperimentRunner`](stem_bench::resilience::ExperimentRunner),
//!   Prometheus text metrics, and graceful drain.
//!
//! Two adversarial layers wrap and probe the stack: [`chaos`] — a
//! deterministic fault-injecting [`Transport`] decorator (partial reads,
//! garbage prefixes, truncation, resets, slow-loris, delay jitter, all
//! replayable from a seed) used by the chaos campaign in
//! `tests/chaos.rs` and the `chaos_smoke` CI binary — and [`backoff`] —
//! the client-side capped-exponential retry schedule with deterministic
//! jitter that `serve_client` applies on 429/503/connect failure.
//!
//! # The no-panic / no-hang guarantee
//!
//! Under arbitrary bytes and arbitrary timing on the wire, the service
//! never panics (`stem_serve_panics_total` stays 0 — every handler runs
//! under `catch_unwind`), and never blocks past its deadlines: each
//! connection's reads and writes are bounded by
//! [`ServeConfig`](service::ServeConfig)`::io_deadline` and each `/run`
//! by its request deadline (client `deadline_ms` or the service
//! default), enforced at both ends of the job queue.
//!
//! # Determinism
//!
//! Identical requests produce **byte-identical** response bodies — across
//! field order, omitted-vs-explicit defaults, thread counts, cache hits
//! and misses, and server restarts. The response is a pure function of
//! the canonical request.
//!
//! # Quickstart
//!
//! ```
//! use stem_serve::{http, service, transport};
//!
//! let (listener, connector) = transport::duplex_transport();
//! let config = service::ServeConfig {
//!     threads: 1,
//!     ..service::ServeConfig::default()
//! };
//! let handle = service::start(Box::new(listener), config);
//!
//! let mut conn = connector.connect().unwrap();
//! let body = br#"{"benchmark": "mcf", "scheme": "lru", "sets": 64, "ways": 4, "accesses": 2000}"#;
//! http::write_request(&mut conn, "POST", "/run", body).unwrap();
//! let resp = http::read_response(&mut conn).unwrap();
//! assert_eq!(resp.status, 200);
//! assert!(resp.body_text().contains("\"mpki\""));
//!
//! handle.shutdown();
//! handle.join();
//! ```

pub mod backoff;
pub mod cache;
pub mod chaos;
pub mod exec;
pub mod http;
pub mod metrics;
pub mod request;
pub mod service;
pub mod transport;

pub use backoff::BackoffPolicy;
pub use cache::{ResultCache, SnapshotCache};
pub use chaos::{ChaosConn, ChaosTransport, ConnPlan, FaultProfile};
pub use exec::{
    run_simulation, simulation_executor, simulation_executor_with, Executor, RequestDeadline,
};
pub use http::Deadline;
pub use metrics::Metrics;
pub use request::{fnv1a64, MixComponent, MixSource, RunRequest};
pub use service::{start, start_with_executor, ServeConfig, ServiceHandle};
pub use transport::{duplex_transport, DuplexConnector, DuplexTransport, TcpTransport, Transport};
