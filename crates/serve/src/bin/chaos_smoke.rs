//! `chaos_smoke` — the offline CI gate for the no-panic/no-hang
//! guarantee.
//!
//! Runs a fixed-seed chaos campaign fully in-process (in-memory duplex
//! transport, real simulation executor, tiny traces): a scripted mix of
//! healthy requests and fault-injected connections (split I/O, garbage,
//! truncation, resets, slow-loris — see [`stem_serve::chaos`]), then
//! verifies on the server's own `/metrics` page that
//!
//! * `stem_serve_panics_total` is exactly 0,
//! * `/healthz` still answers 200 after the storm,
//! * every plan-healthy connection got its 200.
//!
//! Exits nonzero on any violation. No network, no ports, no
//! environment — deterministic enough to run in the tightest CI sandbox.
//!
//! Run with `cargo run --release -p stem-serve --bin chaos_smoke`.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use stem_serve::chaos::{campaign, ChaosTransport, ConnPlan};
use stem_serve::http::{read_response_deadline, write_request, Deadline};
use stem_serve::metrics::Metrics;
use stem_serve::service::{self, ServeConfig};
use stem_serve::transport::{duplex_transport, DuplexConnector};

/// The one seed CI replays. Changing it changes which connections are
/// chaotic, not whether the invariants must hold.
const SMOKE_SEED: u64 = 0x00C0_FFEE;
const CONNECTIONS: u64 = 70;

/// Probes `path` over the next plan-*healthy* connection, burning
/// chaotic indices with empty connections (the handler 400s them; that
/// is part of the storm). Returns the response body and the next unused
/// index.
fn healthy_probe(
    connector: &DuplexConnector,
    mut index: u64,
    path: &str,
) -> Result<(u16, Vec<u8>, u64), String> {
    while !ConnPlan::for_connection(SMOKE_SEED, index).is_passthrough() {
        drop(connector.connect()); // consumes one chaotic accept slot
        index += 1;
    }
    let mut conn = connector
        .connect()
        .map_err(|e| format!("probe connect failed: {e}"))?;
    write_request(&mut conn, "GET", path, b"").map_err(|e| format!("probe write failed: {e}"))?;
    let resp = read_response_deadline(&mut conn, Deadline::after(Duration::from_secs(30)))
        .map_err(|e| format!("probe of {path} unreadable: {e}"))?;
    Ok((resp.status, resp.body, index + 1))
}

fn run() -> Result<(), String> {
    let (listener, connector) = duplex_transport();
    let metrics = Arc::new(Metrics::new());
    let transport = ChaosTransport::new(listener, SMOKE_SEED).with_metrics(Arc::clone(&metrics));
    let handle = service::start(
        Box::new(transport),
        ServeConfig {
            queue_capacity: 4,
            threads: 1,
            io_deadline: Duration::from_millis(500),
            metrics: Some(Arc::clone(&metrics)),
            ..ServeConfig::default()
        },
    );

    let run_bodies: Vec<String> = [1000usize, 2000, 3000]
        .iter()
        .map(|accesses| {
            format!(
                r#"{{"benchmark": "mcf", "scheme": "lru", "sets": 64, "ways": 4, "accesses": {accesses}}}"#
            )
        })
        .collect();
    let outcome = campaign::drive(
        &connector,
        SMOKE_SEED,
        CONNECTIONS,
        &run_bodies,
        Duration::from_secs(60),
        Duration::from_secs(2),
    );
    println!(
        "campaign: {} healthy / {} chaotic connections, {} healthy OK",
        outcome.healthy_planned, outcome.chaotic, outcome.healthy_ok
    );
    if !outcome.failures.is_empty() {
        return Err(format!(
            "healthy connections failed under chaos:\n  {}",
            outcome.failures.join("\n  ")
        ));
    }

    // The storm is over; the service must still be alive and unpanicked,
    // as seen through its own front door.
    let (status, body, next) = healthy_probe(&connector, CONNECTIONS, "/healthz")?;
    if status != 200 {
        return Err(format!("post-storm /healthz returned {status}"));
    }
    let (status, body_metrics, _) = healthy_probe(&connector, next, "/metrics")?;
    if status != 200 {
        return Err(format!("post-storm /metrics returned {status}"));
    }
    let page = String::from_utf8_lossy(&body_metrics);
    if !page.contains("stem_serve_panics_total 0") {
        return Err(format!("panic counter is not zero; /metrics says:\n{page}"));
    }
    if !page.contains("stem_serve_chaos_connections_total") {
        return Err("chaos counters missing from /metrics".to_owned());
    }
    println!(
        "healthz live ({}); panics 0; chaotic accepts {}",
        String::from_utf8_lossy(&body),
        metrics.chaos_connections()
    );

    handle.shutdown();
    // Unblock the accept poll promptly by handing it one last (empty)
    // connection; the transport poll window would get there anyway.
    drop(connector.connect());
    handle.join();
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => {
            println!("chaos smoke passed");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("chaos smoke FAILED: {e}");
            ExitCode::FAILURE
        }
    }
}
