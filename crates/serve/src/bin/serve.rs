//! `serve` — the stem-serve daemon.
//!
//! Binds `STEM_SERVE_ADDR` (default `127.0.0.1:0`, i.e. an ephemeral
//! port), prints the bound address on stdout as `listening on <addr>`,
//! and serves until a client POSTs `/shutdown`. When
//! `STEM_SERVE_ADDR_FILE` is set the bound address is also written
//! there, so scripts (ci.sh's smoke stage) can discover the ephemeral
//! port without parsing stdout.
//!
//! Knobs (all parsed and validated by [`stem_bench::config::Config`]):
//!
//! * `STEM_SERVE_ADDR` — bind address (default `127.0.0.1:0`);
//! * `STEM_SERVE_ADDR_FILE` — file to write the bound address into;
//! * `STEM_SERVE_QUEUE` — bounded queue slots (default 8);
//! * `STEM_SERVE_CACHE` — result-cache entries (default 64, max 255);
//! * `STEM_SERVE_SNAPSHOT_SLOTS` — warm-state snapshot-cache entries
//!   (default 16, max 255; 0 disables warm-prefix reuse — results are
//!   byte-identical either way, only warm-replay work changes);
//! * `STEM_THREADS` — executor worker threads (shared workspace knob);
//! * `STEM_SERVE_BUDGET_SECS` — per-experiment budget (default 600);
//! * `STEM_SERVE_IO_DEADLINE_MS` — per-connection read/write deadline
//!   (default 10000);
//! * `STEM_SERVE_CHAOS_SEED` — when set, every inbound connection runs
//!   through the deterministic fault injector seeded with this value
//!   (self-sabotage for resilience drills; chaotic accepts show up in
//!   `stem_serve_chaos_*` metrics).
//!
//! Run with `cargo run --release -p stem-serve --bin serve`.

use std::process::ExitCode;
use std::sync::Arc;

use stem_bench::config::Config;
use stem_serve::chaos::ChaosTransport;
use stem_serve::metrics::Metrics;
use stem_serve::service::{self, ServeConfig};
use stem_serve::transport::{TcpTransport, Transport};

fn main() -> ExitCode {
    let cfg = match Config::from_env() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("configuration error: {e}");
            return ExitCode::from(2);
        }
    };
    let cache_capacity = cfg.serve_cache();
    if !(1..=255).contains(&cache_capacity) {
        eprintln!(
            "configuration error: STEM_SERVE_CACHE={cache_capacity} exceeds the 255-entry bound"
        );
        return ExitCode::from(2);
    }
    let snapshot_slots = cfg.serve_snapshot_slots();
    if snapshot_slots > 255 {
        eprintln!(
            "configuration error: STEM_SERVE_SNAPSHOT_SLOTS={snapshot_slots} exceeds the \
             255-entry bound"
        );
        return ExitCode::from(2);
    }

    let addr = cfg.serve_addr();
    let tcp = match TcpTransport::bind(&addr) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let bound = tcp.local_addr();
    println!("listening on {bound}");
    if let Some(path) = &cfg.serve_addr_file {
        if let Err(e) = std::fs::write(path, format!("{bound}\n")) {
            eprintln!("cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }

    // Metrics are built here (not inside the service) so a chaos wrapper
    // can count its injections into the same /metrics page.
    let metrics = Arc::new(Metrics::new());
    let transport: Box<dyn Transport> = match cfg.serve_chaos_seed {
        Some(seed) => {
            println!("chaos enabled (seed {seed:#x})");
            Box::new(ChaosTransport::new(tcp, seed).with_metrics(Arc::clone(&metrics)))
        }
        None => Box::new(tcp),
    };

    let config = ServeConfig {
        queue_capacity: cfg.serve_queue(),
        cache_capacity,
        snapshot_slots,
        budget: cfg.serve_budget(),
        io_deadline: cfg.serve_io_deadline(),
        metrics: Some(metrics),
        ..ServeConfig::default()
    };
    let handle = service::start(transport, config);
    handle.join();
    println!("drained; goodbye");
    ExitCode::SUCCESS
}
