//! `serve` — the stem-serve daemon.
//!
//! Binds `STEM_SERVE_ADDR` (default `127.0.0.1:0`, i.e. an ephemeral
//! port), prints the bound address on stdout as `listening on <addr>`,
//! and serves until a client POSTs `/shutdown`. When
//! `STEM_SERVE_ADDR_FILE` is set the bound address is also written
//! there, so scripts (ci.sh's smoke stage) can discover the ephemeral
//! port without parsing stdout.
//!
//! Knobs:
//!
//! * `STEM_SERVE_ADDR` — bind address (default `127.0.0.1:0`);
//! * `STEM_SERVE_ADDR_FILE` — file to write the bound address into;
//! * `STEM_SERVE_QUEUE` — bounded queue slots (default 8);
//! * `STEM_SERVE_CACHE` — result-cache entries (default 64, max 255);
//! * `STEM_THREADS` — executor worker threads (shared workspace knob);
//! * `STEM_SERVE_BUDGET_SECS` — per-experiment budget (default 600).
//!
//! Run with `cargo run --release -p stem-serve --bin serve`.

use std::process::ExitCode;
use std::time::Duration;

use stem_serve::service::{self, ServeConfig};
use stem_serve::transport::TcpTransport;

fn env_usize(var: &str, default: usize) -> Result<usize, String> {
    match std::env::var(var) {
        Err(_) => Ok(default),
        Ok(raw) => raw
            .parse()
            .ok()
            .filter(|&n| n > 0)
            .ok_or_else(|| format!("{var}={raw:?} is malformed: expected a positive integer")),
    }
}

fn main() -> ExitCode {
    let addr = std::env::var("STEM_SERVE_ADDR").unwrap_or_else(|_| "127.0.0.1:0".to_owned());
    let (queue_capacity, cache_capacity, budget_secs) = match (
        env_usize("STEM_SERVE_QUEUE", 8),
        env_usize("STEM_SERVE_CACHE", 64),
        env_usize("STEM_SERVE_BUDGET_SECS", 600),
    ) {
        (Ok(q), Ok(c), Ok(b)) if c <= 255 => (q, c, b),
        (Ok(_), Ok(c), Ok(_)) => {
            eprintln!("configuration error: STEM_SERVE_CACHE={c} exceeds the 255-entry bound");
            return ExitCode::from(2);
        }
        (q, c, b) => {
            for e in [q.err(), c.err(), b.err()].into_iter().flatten() {
                eprintln!("configuration error: {e}");
            }
            return ExitCode::from(2);
        }
    };

    let transport = match TcpTransport::bind(&addr) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let bound = transport.local_addr();
    println!("listening on {bound}");
    if let Ok(path) = std::env::var("STEM_SERVE_ADDR_FILE") {
        if let Err(e) = std::fs::write(&path, format!("{bound}\n")) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }

    let config = ServeConfig {
        queue_capacity,
        cache_capacity,
        budget: Duration::from_secs(budget_secs as u64),
        ..ServeConfig::default()
    };
    let handle = service::start(Box::new(transport), config);
    handle.join();
    println!("drained; goodbye");
    ExitCode::SUCCESS
}
