//! `serve_client` — a tiny raw-TCP client for the stem-serve daemon.
//!
//! The offline CI environment does not guarantee `curl`, so the smoke
//! stage (and anyone poking a local server) uses this instead:
//!
//! ```text
//! serve_client <addr> GET  /healthz
//! serve_client <addr> GET  /metrics
//! serve_client <addr> POST /run '{"benchmark": "mcf", "scheme": "stem"}'
//! serve_client <addr> POST /shutdown
//! serve_client <addr> BENCH /run '{"benchmark": "mcf", ...}' 50
//! ```
//!
//! Prints the response body on stdout; exits 0 on 2xx, 1 otherwise (with
//! the status on stderr).
//!
//! # Retries
//!
//! A failed connect, a 429 (queue full), or a 503 (shed/draining) is
//! retried up to `STEM_SERVE_RETRIES` times (default 4) under the capped
//! exponential backoff with deterministic jitter from
//! [`stem_serve::backoff`]; `STEM_SERVE_BACKOFF_MS` (default 50) sets the
//! base delay. A server-sent `Retry-After` stretches the wait. Protocol
//! errors and other statuses are not retried — they mean the request
//! itself is wrong.
//!
//! # Bench mode
//!
//! `BENCH <path> <json-body> <count>` issues the request `count` times
//! serially (first response discarded as warmup when `count` > 1),
//! prints requests/sec and latency percentiles, and archives them as
//! `BENCH_serve.json` under `STEM_CSV_DIR` (current directory when
//! unset).
//!
//! When the body asks for `"fidelity": "sampled"`, bench mode also runs
//! the request's **exact twin** (same body with the fidelity and
//! sampling knobs stripped) and archives both measurements side by side
//! (`exact` / `sampled` sections), so `BENCH_serve.json` records the
//! sampled tier's req/s and p50/p99 against the exact tier's.

use std::net::TcpStream;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use stem_bench::config::Config;
use stem_serve::backoff::BackoffPolicy;
use stem_serve::http::{self, HttpResponse};
use stem_sim_core::{Json, SplitMix64};

/// Seed for the retry jitter: fixed, so two runs of the same failing
/// command back off on the same schedule.
const JITTER_SEED: u64 = 0x5EED_C11E;

fn one_exchange(addr: &str, method: &str, path: &str, body: &[u8]) -> Result<HttpResponse, String> {
    let mut stream =
        TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let _ = stream.set_read_timeout(Some(Duration::from_secs(660)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
    http::write_request(&mut stream, method, path, body)
        .map_err(|e| format!("request failed: {e}"))?;
    http::read_response(&mut stream).map_err(|e| format!("response unreadable: {e}"))
}

/// One request with the retry loop around it: connect failures, 429, and
/// 503 back off and retry; everything else returns as-is.
fn request_with_retries(
    addr: &str,
    method: &str,
    path: &str,
    body: &[u8],
    policy: &BackoffPolicy,
    rng: &mut SplitMix64,
) -> Result<HttpResponse, String> {
    let mut attempt = 0u32;
    loop {
        let outcome = one_exchange(addr, method, path, body);
        let retryable = match &outcome {
            Ok(resp) => matches!(resp.status, 429 | 503),
            Err(_) => true,
        };
        if !retryable || attempt >= policy.retries {
            return outcome;
        }
        let retry_after = outcome
            .as_ref()
            .ok()
            .and_then(HttpResponse::retry_after_secs);
        let delay = policy.delay(attempt, retry_after, rng);
        eprintln!(
            "attempt {} {}; retrying in {}ms",
            attempt + 1,
            match &outcome {
                Ok(resp) => format!("got HTTP {}", resp.status),
                Err(e) => format!("failed ({e})"),
            },
            delay.as_millis()
        );
        std::thread::sleep(delay);
        attempt += 1;
    }
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// One measured serial run: steady-state requests/sec plus latency
/// percentiles (first response discarded as warmup when `count` > 1).
struct BenchStats {
    measured: usize,
    rps: f64,
    p50: Duration,
    p99: Duration,
    wall: Duration,
}

impl BenchStats {
    /// The flat measurement fields shared by every report shape.
    fn fields(&self) -> Vec<(String, Json)> {
        vec![
            ("measured".to_owned(), Json::Int(self.measured as i64)),
            (
                "requests_per_sec".to_owned(),
                Json::float_rounded(self.rps, 2),
            ),
            (
                "p50_ms".to_owned(),
                Json::float_rounded(self.p50.as_secs_f64() * 1e3, 3),
            ),
            (
                "p99_ms".to_owned(),
                Json::float_rounded(self.p99.as_secs_f64() * 1e3, 3),
            ),
            (
                "wall_seconds".to_owned(),
                Json::float_rounded(self.wall.as_secs_f64(), 3),
            ),
        ]
    }
}

/// Runs `count` serial requests and measures the steady state.
fn measure(
    addr: &str,
    path: &str,
    body: &[u8],
    count: usize,
    label: &str,
    policy: &BackoffPolicy,
    rng: &mut SplitMix64,
) -> Result<BenchStats, String> {
    let mut latencies = Vec::with_capacity(count);
    let started = Instant::now();
    for i in 0..count {
        let t0 = Instant::now();
        let resp = request_with_retries(addr, "POST", path, body, policy, rng)?;
        if resp.status != 200 {
            return Err(format!(
                "bench request {i} ({label}) got HTTP {}: {}",
                resp.status,
                resp.body_text()
            ));
        }
        // The first request pays trace preparation and a cache miss;
        // discard it as warmup so the steady-state numbers are honest.
        if i > 0 || count == 1 {
            latencies.push(t0.elapsed());
        }
    }
    let wall = started.elapsed();
    latencies.sort_unstable();
    let measured = latencies.len();
    let rps = measured as f64 / latencies.iter().sum::<Duration>().as_secs_f64().max(1e-9);
    let stats = BenchStats {
        measured,
        rps,
        p50: percentile(&latencies, 0.50),
        p99: percentile(&latencies, 0.99),
        wall,
    };
    println!(
        "{label}: {count} requests in {:.2}s ({:.1} req/s steady-state, p50 {:.2}ms, p99 {:.2}ms)",
        stats.wall.as_secs_f64(),
        stats.rps,
        stats.p50.as_secs_f64() * 1e3,
        stats.p99.as_secs_f64() * 1e3,
    );
    Ok(stats)
}

/// The exact twin of a sampled `/run` body: the same experiment with the
/// fidelity tier and sampling knobs stripped (the request then defaults
/// to `exact`). Returns `None` when the body is not a sampled request.
fn exact_twin(body: &[u8]) -> Option<Vec<u8>> {
    let text = std::str::from_utf8(body).ok()?;
    let json = Json::parse(text).ok()?;
    let obj = json.as_obj()?;
    if json.get("fidelity")?.as_str()? != "sampled" {
        return None;
    }
    let stripped: Vec<(String, Json)> = obj
        .iter()
        .filter(|(k, _)| !matches!(k.as_str(), "fidelity" | "sample_rate" | "sample_seed"))
        .cloned()
        .collect();
    Some(Json::Obj(stripped).to_string().into_bytes())
}

/// Serial benchmark against a live server; archives `BENCH_serve.json`.
/// A sampled body is measured against its exact twin side by side.
fn bench(
    addr: &str,
    path: &str,
    body: &[u8],
    count: usize,
    policy: &BackoffPolicy,
    rng: &mut SplitMix64,
) -> Result<(), String> {
    let mut report = vec![
        ("bench".to_owned(), Json::str("stem-serve")),
        ("path".to_owned(), Json::str(path)),
        ("requests".to_owned(), Json::Int(count as i64)),
    ];
    if let Some(exact_body) = exact_twin(body) {
        let exact = measure(addr, path, &exact_body, count, "exact", policy, rng)?;
        let sampled = measure(addr, path, body, count, "sampled", policy, rng)?;
        report.push((
            "sampled_vs_exact_p50".to_owned(),
            Json::float_rounded(
                exact.p50.as_secs_f64() / sampled.p50.as_secs_f64().max(1e-9),
                2,
            ),
        ));
        report.push(("exact".to_owned(), Json::Obj(exact.fields())));
        report.push(("sampled".to_owned(), Json::Obj(sampled.fields())));
    } else {
        let stats = measure(addr, path, body, count, "steady-state", policy, rng)?;
        report.extend(stats.fields());
    }
    let dir = std::env::var("STEM_CSV_DIR").unwrap_or_else(|_| ".".to_owned());
    let out = std::path::Path::new(&dir).join("BENCH_serve.json");
    std::fs::write(&out, Json::Obj(report).pretty() + "\n")
        .map_err(|e| format!("cannot write {}: {e}", out.display()))?;
    println!("wrote {}", out.display());
    Ok(())
}

fn main() -> ExitCode {
    let cfg = match Config::from_env() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("configuration error: {e}");
            return ExitCode::from(2);
        }
    };
    let policy = BackoffPolicy {
        base_ms: cfg.serve_backoff_ms(),
        retries: cfg.serve_retries(),
    };
    let mut rng = SplitMix64::new(JITTER_SEED);

    let args: Vec<String> = std::env::args().skip(1).collect();
    if let [addr, mode, path, body, count] = args.as_slice() {
        if mode == "BENCH" {
            let Ok(count) = count.parse::<usize>() else {
                eprintln!("BENCH count {count:?} is not a positive integer");
                return ExitCode::from(2);
            };
            return match bench(addr, path, body.as_bytes(), count.max(1), &policy, &mut rng) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("{e}");
                    ExitCode::FAILURE
                }
            };
        }
    }
    let (addr, method, path, body) = match args.as_slice() {
        [addr, method, path] => (addr, method.as_str(), path.as_str(), Vec::new()),
        [addr, method, path, body] => (
            addr,
            method.as_str(),
            path.as_str(),
            body.clone().into_bytes(),
        ),
        _ => {
            eprintln!(
                "usage: serve_client <addr> <METHOD> <path> [json-body]\n       serve_client <addr> BENCH <path> <json-body> <count>"
            );
            return ExitCode::from(2);
        }
    };

    match request_with_retries(addr, method, path, &body, &policy, &mut rng) {
        Ok(resp) => {
            print!("{}", resp.body_text());
            if (200..300).contains(&resp.status) {
                ExitCode::SUCCESS
            } else {
                eprintln!("HTTP {}", resp.status);
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
