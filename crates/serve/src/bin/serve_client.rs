//! `serve_client` — a tiny raw-TCP client for the stem-serve daemon.
//!
//! The offline CI environment does not guarantee `curl`, so the smoke
//! stage (and anyone poking a local server) uses this instead:
//!
//! ```text
//! serve_client <addr> GET  /healthz
//! serve_client <addr> GET  /metrics
//! serve_client <addr> POST /run '{"benchmark": "mcf", "scheme": "stem"}'
//! serve_client <addr> POST /shutdown
//! ```
//!
//! Prints the response body on stdout; exits 0 on 2xx, 1 otherwise (with
//! the status on stderr).

use std::net::TcpStream;
use std::process::ExitCode;
use std::time::Duration;

use stem_serve::http;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (addr, method, path, body) = match args.as_slice() {
        [addr, method, path] => (addr, method.as_str(), path.as_str(), Vec::new()),
        [addr, method, path, body] => (
            addr,
            method.as_str(),
            path.as_str(),
            body.clone().into_bytes(),
        ),
        _ => {
            eprintln!("usage: serve_client <addr> <METHOD> <path> [json-body]");
            return ExitCode::from(2);
        }
    };

    let mut stream = match TcpStream::connect(addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot connect to {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let _ = stream.set_read_timeout(Some(Duration::from_secs(660)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));

    if let Err(e) = http::write_request(&mut stream, method, path, &body) {
        eprintln!("request failed: {e}");
        return ExitCode::FAILURE;
    }
    match http::read_response(&mut stream) {
        Ok(resp) => {
            print!("{}", resp.body_text());
            if (200..300).contains(&resp.status) {
                ExitCode::SUCCESS
            } else {
                eprintln!("HTTP {}", resp.status);
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("response unreadable: {e}");
            ExitCode::FAILURE
        }
    }
}
