//! A deliberately minimal HTTP/1.1 implementation.
//!
//! The service speaks one request per connection (`Connection: close` on
//! every response), which keeps the state machine trivial: read one
//! request head, read `Content-Length` body bytes, write one response,
//! close. That is all the `serve` workload needs — experiment requests
//! are seconds-long, so connection reuse buys nothing — and it removes
//! keep-alive timeout and pipelining corner cases entirely.
//!
//! Limits are enforced while *reading*, so a hostile peer cannot balloon
//! memory: the head is capped at 16 KiB and the body at 1 MiB.
//!
//! # Deadlines
//!
//! Every read/write loop takes a [`Deadline`] and checks it between I/O
//! operations, so a slow-loris peer dripping one byte per read cannot pin
//! a handler thread: total time on a connection is bounded by the
//! deadline plus at most one underlying I/O timeout (the per-stream
//! read/write timeouts the transports set bound each individual call).
//! Body reads are chunked rather than `read_exact`, so a body truncated
//! short of its `Content-Length` surfaces as a clean parse error and a
//! never-arriving body is cut by the deadline. The deadline-free entry
//! points ([`read_request`], [`read_response`], [`write_request`],
//! [`write_response`]) delegate with [`Deadline::none`].

use std::io::{self, Read, Write};
use std::time::{Duration, Instant};

/// Maximum bytes of request line + headers.
pub const MAX_HEAD: usize = 16 * 1024;
/// Maximum request body bytes.
pub const MAX_BODY: usize = 1024 * 1024;
/// Body bytes read per loop iteration (deadline checked between chunks).
const BODY_CHUNK: usize = 4096;

/// A wall-clock bound on one I/O loop. `Deadline::none()` never expires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline {
    at: Option<Instant>,
}

impl Deadline {
    /// No bound: loops run until the stream ends or errors.
    pub fn none() -> Self {
        Deadline { at: None }
    }

    /// Expires `timeout` from now.
    pub fn after(timeout: Duration) -> Self {
        Deadline {
            at: Some(Instant::now() + timeout),
        }
    }

    /// Expires at `at`.
    pub fn at(at: Instant) -> Self {
        Deadline { at: Some(at) }
    }

    /// Whether the deadline has passed.
    pub fn expired(&self) -> bool {
        self.at.is_some_and(|at| Instant::now() >= at)
    }

    /// Time left, `None` when unbounded.
    pub fn remaining(&self) -> Option<Duration> {
        self.at
            .map(|at| at.saturating_duration_since(Instant::now()))
    }
}

impl Default for Deadline {
    fn default() -> Self {
        Deadline::none()
    }
}

/// The detail string marker for deadline expiries, so callers can
/// distinguish "peer sent garbage" from "peer was too slow" without a
/// second error channel.
const DEADLINE_MARKER: &str = "i/o deadline exceeded";

/// Why a request could not be parsed; rendered into a 4xx by the caller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpError(pub String);

impl HttpError {
    /// Whether this failure was the connection deadline expiring (as
    /// opposed to a protocol violation).
    pub fn is_deadline(&self) -> bool {
        self.0.contains(DEADLINE_MARKER)
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed HTTP request: {}", self.0)
    }
}

fn bad(detail: impl Into<String>) -> HttpError {
    HttpError(detail.into())
}

fn deadline_error(stage: &str) -> HttpError {
    bad(format!("{DEADLINE_MARKER} while {stage}"))
}

fn deadline_io_error(stage: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::TimedOut,
        format!("{DEADLINE_MARKER} while {stage}"),
    )
}

/// One parsed inbound request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// Uppercased method (`GET`, `POST`, …).
    pub method: String,
    /// Request path, query string stripped (none of our routes take one).
    pub path: String,
    /// Raw body bytes (`Content-Length` worth).
    pub body: Vec<u8>,
}

/// Reads one head (everything through the blank line) under `deadline`.
fn read_head(
    conn: &mut dyn Read,
    deadline: Deadline,
    what: &str,
    empty_msg: &str,
    mid_msg: &str,
) -> Result<Vec<u8>, HttpError> {
    let mut head = Vec::with_capacity(512);
    let mut byte = [0u8; 1];
    // Single-byte reads keep the parser from consuming body bytes past the
    // blank line; the underlying streams are in-memory or kernel-buffered,
    // so this costs microseconds on requests that run simulations for
    // seconds.
    while !head.ends_with(b"\r\n\r\n") {
        if head.len() >= MAX_HEAD {
            return Err(bad(format!("{what} head exceeds {MAX_HEAD} bytes")));
        }
        if deadline.expired() {
            return Err(deadline_error(&format!("reading {what} head")));
        }
        match conn.read(&mut byte) {
            Ok(0) => {
                return Err(bad(if head.is_empty() { empty_msg } else { mid_msg }));
            }
            Ok(_) => head.push(byte[0]),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(bad(format!("reading {what} head: {e}"))),
        }
    }
    Ok(head)
}

/// Reads exactly `len` body bytes in chunks, checking `deadline` between
/// chunks; a premature EOF is reported as truncation, not a generic read
/// failure.
fn read_body(conn: &mut dyn Read, len: usize, deadline: Deadline) -> Result<Vec<u8>, HttpError> {
    let mut body = vec![0u8; len];
    let mut filled = 0usize;
    while filled < len {
        if deadline.expired() {
            return Err(deadline_error("reading body"));
        }
        let chunk_end = (filled + BODY_CHUNK).min(len);
        match conn.read(&mut body[filled..chunk_end]) {
            Ok(0) => {
                return Err(bad(format!(
                    "body truncated: got {filled} of {len} Content-Length bytes"
                )))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(bad(format!("reading {len}-byte body: {e}"))),
        }
    }
    Ok(body)
}

/// Reads one HTTP/1.1 request (head + `Content-Length` body) from `conn`,
/// bounded by `deadline`.
///
/// # Errors
///
/// I/O failures and protocol violations both come back as [`HttpError`];
/// deadline expiries answer `true` to [`HttpError::is_deadline`].
pub fn read_request_deadline(
    conn: &mut dyn Read,
    deadline: Deadline,
) -> Result<HttpRequest, HttpError> {
    let head = read_head(
        conn,
        deadline,
        "request",
        "connection closed before any request",
        "connection closed mid-head",
    )?;
    let head = std::str::from_utf8(&head).map_err(|_| bad("request head is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| bad("empty request line"))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| bad("request line has no target"))?;
    let version = parts
        .next()
        .ok_or_else(|| bad("request line has no HTTP version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(bad(format!("unsupported protocol version {version:?}")));
    }
    let path = target.split('?').next().unwrap_or(target).to_owned();
    if !path.starts_with('/') {
        return Err(bad(format!("request target {target:?} is not a path")));
    }

    let mut content_length = 0usize;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(bad(format!("header line without a colon: {line:?}")));
        };
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| bad(format!("unparseable Content-Length {:?}", value.trim())))?;
            if content_length > MAX_BODY {
                return Err(bad(format!(
                    "body of {content_length} bytes exceeds {MAX_BODY}"
                )));
            }
        }
    }

    let body = read_body(conn, content_length, deadline)?;
    Ok(HttpRequest { method, path, body })
}

/// [`read_request_deadline`] without a bound (tests, trusted pipes).
///
/// # Errors
///
/// See [`read_request_deadline`].
pub fn read_request(conn: &mut dyn Read) -> Result<HttpRequest, HttpError> {
    read_request_deadline(conn, Deadline::none())
}

/// The status lines the service emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes `data` in chunks, checking `deadline` between writes.
fn write_all_deadline(
    conn: &mut dyn Write,
    mut data: &[u8],
    deadline: Deadline,
    stage: &str,
) -> io::Result<()> {
    while !data.is_empty() {
        if deadline.expired() {
            return Err(deadline_io_error(stage));
        }
        let chunk = data.len().min(BODY_CHUNK);
        match conn.write(&data[..chunk]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    format!("stream accepted zero bytes while {stage}"),
                ))
            }
            Ok(n) => data = &data[n..],
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Writes one complete response (with optional extra headers) under
/// `deadline` and flushes. Every response carries `Connection: close`;
/// the caller drops the connection afterwards.
///
/// # Errors
///
/// Underlying I/O errors; deadline expiry surfaces as
/// [`io::ErrorKind::TimedOut`].
pub fn write_response_deadline(
    conn: &mut dyn Write,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &[u8],
    deadline: Deadline,
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\nconnection: close\r\n",
        reason(status),
        body.len(),
    );
    for (name, value) in extra_headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    write_all_deadline(conn, head.as_bytes(), deadline, "writing response head")?;
    write_all_deadline(conn, body, deadline, "writing response body")?;
    conn.flush()
}

/// [`write_response_deadline`] with no extra headers and no bound.
///
/// # Errors
///
/// See [`write_response_deadline`].
pub fn write_response(
    conn: &mut dyn Write,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> io::Result<()> {
    write_response_deadline(conn, status, content_type, &[], body, Deadline::none())
}

/// Writes one client request with a body and flushes.
///
/// # Errors
///
/// Underlying I/O errors.
pub fn write_request(
    conn: &mut dyn Write,
    method: &str,
    path: &str,
    body: &[u8],
) -> io::Result<()> {
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: stem-serve\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        body.len(),
    );
    write_all_deadline(
        conn,
        head.as_bytes(),
        Deadline::none(),
        "writing request head",
    )?;
    write_all_deadline(conn, body, Deadline::none(), "writing request body")?;
    conn.flush()
}

/// A parsed response, for the client side (tests, `serve_client`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// Numeric status code.
    pub status: u16,
    /// Response headers in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// The body as UTF-8 (lossy — diagnostics only).
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// The first header named `name` (ASCII case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The `Retry-After` header as whole seconds, when present and
    /// numeric.
    pub fn retry_after_secs(&self) -> Option<u64> {
        self.header("retry-after")?.trim().parse().ok()
    }
}

/// Reads one response from `conn` (status line, headers, `Content-Length`
/// body) under `deadline`. The server always sends `Content-Length`, so
/// chunked decoding is not implemented.
///
/// # Errors
///
/// See [`read_request_deadline`].
pub fn read_response_deadline(
    conn: &mut dyn Read,
    deadline: Deadline,
) -> Result<HttpResponse, HttpError> {
    let head = read_head(
        conn,
        deadline,
        "response",
        "connection closed mid-response",
        "connection closed mid-response",
    )?;
    let head = std::str::from_utf8(&head).map_err(|_| bad("response head is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or_default();
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad(format!("unparseable status line {status_line:?}")))?;
    let mut content_length = 0usize;
    let mut headers = Vec::new();
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            let name = name.to_ascii_lowercase();
            let value = value.trim().to_owned();
            if name == "content-length" {
                content_length = value
                    .parse()
                    .map_err(|_| bad("unparseable response Content-Length"))?;
            }
            headers.push((name, value));
        }
    }
    let body = read_body(conn, content_length, deadline)?;
    Ok(HttpResponse {
        status,
        headers,
        body,
    })
}

/// [`read_response_deadline`] without a bound.
///
/// # Errors
///
/// See [`read_request_deadline`].
pub fn read_response(conn: &mut dyn Read) -> Result<HttpResponse, HttpError> {
    read_response_deadline(conn, Deadline::none())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_post_with_body() {
        let raw = b"POST /run HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\n{\"a\"";
        let req = read_request(&mut &raw[..]).expect("parse");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/run");
        assert_eq!(req.body, b"{\"a\"");
    }

    #[test]
    fn strips_query_strings_and_uppercases_methods() {
        let raw = b"get /metrics?x=1 HTTP/1.1\r\n\r\n";
        let req = read_request(&mut &raw[..]).expect("parse");
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/metrics");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_oversized_bodies_and_bad_lengths() {
        let raw = format!(
            "POST /run HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        let err = read_request(&mut raw.as_bytes()).expect_err("too big");
        assert!(err.0.contains("exceeds"), "{err}");

        let raw = b"POST /run HTTP/1.1\r\nContent-Length: nope\r\n\r\n";
        let err = read_request(&mut &raw[..]).expect_err("bad length");
        assert!(err.0.contains("Content-Length"), "{err}");
    }

    #[test]
    fn rejects_garbage_request_lines() {
        for raw in [&b"\r\n\r\n"[..], b"GET\r\n\r\n", b"GET /x SPDY/9\r\n\r\n"] {
            read_request(&mut &raw[..]).expect_err("garbage rejected");
        }
    }

    #[test]
    fn truncated_body_is_named_as_truncation() {
        let raw = b"POST /run HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort";
        let err = read_request(&mut &raw[..]).expect_err("truncated");
        assert!(err.0.contains("truncated"), "{err}");
        assert!(!err.is_deadline());
    }

    #[test]
    fn an_expired_deadline_stops_the_read_and_is_distinguishable() {
        /// A reader that never runs dry and never hurries: worst-case
        /// slow-loris, dripping one byte per millisecond.
        struct SlowLoris;
        impl Read for SlowLoris {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                std::thread::sleep(Duration::from_millis(1));
                buf[0] = b'x';
                Ok(1)
            }
        }
        let deadline = Deadline::after(Duration::from_millis(20));
        let err = read_request_deadline(&mut SlowLoris, deadline).expect_err("cut off");
        assert!(err.is_deadline(), "{err}");
    }

    #[test]
    fn deadline_none_never_expires() {
        assert!(!Deadline::none().expired());
        assert!(Deadline::none().remaining().is_none());
        assert!(Deadline::after(Duration::ZERO).expired());
    }

    #[test]
    fn response_round_trips_through_the_client_parser() {
        let mut wire = Vec::new();
        write_response(&mut wire, 429, "application/json", b"{\"error\":\"full\"}").expect("write");
        let resp = read_response(&mut &wire[..]).expect("parse");
        assert_eq!(resp.status, 429);
        assert_eq!(resp.body, b"{\"error\":\"full\"}");
        assert_eq!(resp.header("connection"), Some("close"));
    }

    #[test]
    fn extra_headers_round_trip() {
        let mut wire = Vec::new();
        write_response_deadline(
            &mut wire,
            429,
            "application/json",
            &[("retry-after", "7".to_owned())],
            b"{}",
            Deadline::none(),
        )
        .expect("write");
        let resp = read_response(&mut &wire[..]).expect("parse");
        assert_eq!(resp.retry_after_secs(), Some(7));
    }
}
