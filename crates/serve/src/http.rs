//! A deliberately minimal HTTP/1.1 implementation.
//!
//! The service speaks one request per connection (`Connection: close` on
//! every response), which keeps the state machine trivial: read one
//! request head, read `Content-Length` body bytes, write one response,
//! close. That is all the `serve` workload needs — experiment requests
//! are seconds-long, so connection reuse buys nothing — and it removes
//! keep-alive timeout and pipelining corner cases entirely.
//!
//! Limits are enforced while *reading*, so a hostile peer cannot balloon
//! memory: the head is capped at 16 KiB and the body at 1 MiB.

use std::io::{self, Read, Write};

/// Maximum bytes of request line + headers.
const MAX_HEAD: usize = 16 * 1024;
/// Maximum request body bytes.
pub const MAX_BODY: usize = 1024 * 1024;

/// One parsed inbound request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// Uppercased method (`GET`, `POST`, …).
    pub method: String,
    /// Request path, query string stripped (none of our routes take one).
    pub path: String,
    /// Raw body bytes (`Content-Length` worth).
    pub body: Vec<u8>,
}

/// Why a request could not be parsed; rendered into a 400 by the caller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpError(pub String);

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed HTTP request: {}", self.0)
    }
}

fn bad(detail: impl Into<String>) -> HttpError {
    HttpError(detail.into())
}

/// Reads one HTTP/1.1 request (head + `Content-Length` body) from `conn`.
///
/// # Errors
///
/// `Err(Ok(HttpError))` is never produced — the nested result is
/// flattened: I/O failures come back as `io::Error`, protocol violations
/// as `HttpError` wrapped in `InvalidData`.
pub fn read_request(conn: &mut dyn Read) -> Result<HttpRequest, HttpError> {
    let mut head = Vec::with_capacity(512);
    let mut byte = [0u8; 1];
    // Single-byte reads keep the parser from consuming body bytes past the
    // blank line; the underlying streams are in-memory or kernel-buffered,
    // so this costs microseconds on requests that run simulations for
    // seconds.
    while !head.ends_with(b"\r\n\r\n") {
        if head.len() >= MAX_HEAD {
            return Err(bad(format!("request head exceeds {MAX_HEAD} bytes")));
        }
        match conn.read(&mut byte) {
            Ok(0) => {
                return Err(bad(if head.is_empty() {
                    "connection closed before any request".to_owned()
                } else {
                    "connection closed mid-head".to_owned()
                }))
            }
            Ok(_) => head.push(byte[0]),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(bad(format!("reading request head: {e}"))),
        }
    }
    let head = std::str::from_utf8(&head).map_err(|_| bad("request head is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| bad("empty request line"))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| bad("request line has no target"))?;
    let version = parts
        .next()
        .ok_or_else(|| bad("request line has no HTTP version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(bad(format!("unsupported protocol version {version:?}")));
    }
    let path = target.split('?').next().unwrap_or(target).to_owned();
    if !path.starts_with('/') {
        return Err(bad(format!("request target {target:?} is not a path")));
    }

    let mut content_length = 0usize;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(bad(format!("header line without a colon: {line:?}")));
        };
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| bad(format!("unparseable Content-Length {:?}", value.trim())))?;
            if content_length > MAX_BODY {
                return Err(bad(format!(
                    "body of {content_length} bytes exceeds {MAX_BODY}"
                )));
            }
        }
    }

    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        conn.read_exact(&mut body)
            .map_err(|e| bad(format!("reading {content_length}-byte body: {e}")))?;
    }
    Ok(HttpRequest { method, path, body })
}

/// The status lines the service emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes one complete response and flushes. Every response carries
/// `Connection: close`; the caller drops the connection afterwards.
pub fn write_response(
    conn: &mut dyn Write,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        reason(status),
        body.len(),
    );
    conn.write_all(head.as_bytes())?;
    conn.write_all(body)?;
    conn.flush()
}

/// Writes one client request with a body and flushes.
pub fn write_request(
    conn: &mut dyn Write,
    method: &str,
    path: &str,
    body: &[u8],
) -> io::Result<()> {
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: stem-serve\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        body.len(),
    );
    conn.write_all(head.as_bytes())?;
    conn.write_all(body)?;
    conn.flush()
}

/// A parsed response, for the client side (tests, `serve_client`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// Numeric status code.
    pub status: u16,
    /// Raw body bytes.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// The body as UTF-8 (lossy — diagnostics only).
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Reads one response from `conn` (status line, headers, `Content-Length`
/// body). The server always sends `Content-Length`, so chunked decoding is
/// not implemented.
pub fn read_response(conn: &mut dyn Read) -> Result<HttpResponse, HttpError> {
    let mut head = Vec::with_capacity(256);
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        if head.len() >= MAX_HEAD {
            return Err(bad(format!("response head exceeds {MAX_HEAD} bytes")));
        }
        match conn.read(&mut byte) {
            Ok(0) => return Err(bad("connection closed mid-response")),
            Ok(_) => head.push(byte[0]),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(bad(format!("reading response head: {e}"))),
        }
    }
    let head = std::str::from_utf8(&head).map_err(|_| bad("response head is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or_default();
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad(format!("unparseable status line {status_line:?}")))?;
    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| bad("unparseable response Content-Length"))?;
            }
        }
    }
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        conn.read_exact(&mut body)
            .map_err(|e| bad(format!("reading response body: {e}")))?;
    }
    Ok(HttpResponse { status, body })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_post_with_body() {
        let raw = b"POST /run HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\n{\"a\"";
        let req = read_request(&mut &raw[..]).expect("parse");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/run");
        assert_eq!(req.body, b"{\"a\"");
    }

    #[test]
    fn strips_query_strings_and_uppercases_methods() {
        let raw = b"get /metrics?x=1 HTTP/1.1\r\n\r\n";
        let req = read_request(&mut &raw[..]).expect("parse");
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/metrics");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_oversized_bodies_and_bad_lengths() {
        let raw = format!(
            "POST /run HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        let err = read_request(&mut raw.as_bytes()).expect_err("too big");
        assert!(err.0.contains("exceeds"), "{err}");

        let raw = b"POST /run HTTP/1.1\r\nContent-Length: nope\r\n\r\n";
        let err = read_request(&mut &raw[..]).expect_err("bad length");
        assert!(err.0.contains("Content-Length"), "{err}");
    }

    #[test]
    fn rejects_garbage_request_lines() {
        for raw in [&b"\r\n\r\n"[..], b"GET\r\n\r\n", b"GET /x SPDY/9\r\n\r\n"] {
            read_request(&mut &raw[..]).expect_err("garbage rejected");
        }
    }

    #[test]
    fn response_round_trips_through_the_client_parser() {
        let mut wire = Vec::new();
        write_response(&mut wire, 429, "application/json", b"{\"error\":\"full\"}").expect("write");
        let resp = read_response(&mut &wire[..]).expect("parse");
        assert_eq!(resp.status, 429);
        assert_eq!(resp.body, b"{\"error\":\"full\"}");
    }
}
