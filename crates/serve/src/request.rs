//! Experiment request decoding, validation, and canonicalization.
//!
//! A `/run` body is strict JSON (see [`stem_sim_core::Json`]): two
//! required fields (`benchmark`, `scheme`), optional geometry and length
//! overrides, and nothing else — unknown fields are rejected so a typo'd
//! knob fails loudly instead of silently running the default experiment.
//!
//! Every accepted request has exactly one **canonical form**: the full
//! field set in a fixed order with defaults filled in. The canonical
//! serialization is what gets hashed (FNV-1a 64) for the result cache and
//! echoed back in the response, so two requests that *mean* the same
//! experiment — regardless of field order or omitted defaults — share one
//! cache entry and one byte-identical response body.

use stem_analysis::{scheme_supports_set_sampling, Scheme};
use stem_bench::config::Fidelity;
use stem_sim_core::{CacheGeometry, Json, SimError};
use stem_workloads::{spec2010_suite, BenchmarkProfile, MAX_MIX_PROGRAMS};

/// Hard ceiling on `accesses`: a service request is an interactive
/// experiment, not a batch reproduction run.
pub const MAX_ACCESSES: usize = 20_000_000;

/// Hard ceiling on `sample_rate` (a 1-in-`rate` strided set selection;
/// the selector clamps to the pair-domain count anyway, so anything
/// larger is a typo, not a request).
pub const MAX_SAMPLE_RATE: u64 = 65_536;

/// Default trace length when the request does not override it.
pub const DEFAULT_ACCESSES: usize = 200_000;

/// Default warm-up fraction (the paper's 20% split).
pub const DEFAULT_WARMUP: f64 = 0.2;

/// Ceiling on the client-suppliable `deadline_ms` budget (one hour — the
/// service's own executor budget is the real long stop).
pub const MAX_DEADLINE_MS: u64 = 3_600_000;

/// Ceiling on a mix component's trace file name length.
pub const MAX_TRACE_NAME_LEN: usize = 64;

/// Where one mix component's accesses come from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MixSource {
    /// A Table 2 benchmark analog, by suite name.
    Benchmark(String),
    /// An ingested trace file, by plain file name; the executor resolves
    /// it under the service's trace directory (`STEM_SERVE_TRACE_DIR`).
    Trace(String),
}

/// One component (core) of a multi-programmed mix request.
#[derive(Debug, Clone, PartialEq)]
pub struct MixComponent {
    /// The workload this core replays.
    pub source: MixSource,
    /// Interleave weight (validated positive; defaults to 1.0).
    pub weight: f64,
}

/// A validated experiment request in canonical form.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRequest {
    /// Benchmark analog name (Table 2 suite). Empty exactly when this is
    /// a mix request ([`mix`](Self::mix) is `Some`); the two forms are
    /// mutually exclusive on the wire.
    pub benchmark: String,
    /// Multi-programmed mix components, one per core, when this is a mix
    /// request. Mix requests replay a shared LLC under the full exact
    /// hierarchy; they exclude `profile` and sampled fidelity.
    pub mix: Option<Vec<MixComponent>>,
    /// Seed of the deterministic interleave lottery (only meaningful —
    /// and only accepted on the wire — with [`mix`](Self::mix); fixed to
    /// 0 otherwise).
    pub mix_seed: u64,
    /// Replacement/management scheme to evaluate.
    pub scheme: Scheme,
    /// LLC sets (default 2048 — the paper's L2).
    pub sets: usize,
    /// LLC ways (default 16).
    pub ways: usize,
    /// Line size in bytes (default 64).
    pub line_bytes: u64,
    /// Trace length in accesses.
    pub accesses: usize,
    /// Fraction of the trace used to warm the hierarchy before measuring.
    pub warmup_fraction: f64,
    /// Whether to include the §3.1 per-set capacity-demand profile.
    pub profile: bool,
    /// Simulation fidelity tier: `exact` replays the whole trace through
    /// the full system model; `sampled` replays a UMON-style strided set
    /// sample through the bare LLC and scales the estimate back up.
    pub fidelity: Fidelity,
    /// Strided selection rate (1-in-`sample_rate` pair domains). Only
    /// meaningful — and only accepted on the wire — when `fidelity` is
    /// `sampled`; fixed to the default otherwise so the canonical form
    /// stays a pure function of the experiment.
    pub sample_rate: u32,
    /// Selection seed (offsets the stride). Same wire rules as
    /// [`sample_rate`](Self::sample_rate).
    pub sample_seed: u64,
    /// Client-supplied wall-clock budget for this request, if any.
    ///
    /// **Operational metadata, not experiment identity**: the deadline is
    /// validated here but deliberately excluded from [`canonical`](Self::canonical)
    /// and [`cache_key`](Self::cache_key), so two requests for the same
    /// experiment with different patience share one cache entry and one
    /// byte-identical response body — caching stays a pure function of
    /// *what* is asked, never *how long* the client will wait.
    pub deadline_ms: Option<u64>,
}

fn invalid(detail: impl Into<String>) -> SimError {
    SimError::config("serve", detail)
}

/// Validates the `mix` array: 1..=[`MAX_MIX_PROGRAMS`] component objects,
/// each naming exactly one of `benchmark` (a suite name) or `trace` (a
/// plain file name), with an optional positive `weight` defaulting to 1.
fn parse_mix(json: &Json) -> Result<Vec<MixComponent>, SimError> {
    let arr = json
        .as_arr()
        .ok_or_else(|| invalid("field \"mix\" must be an array of component objects"))?;
    if arr.is_empty() || arr.len() > MAX_MIX_PROGRAMS {
        return Err(invalid(format!(
            "field \"mix\" must hold 1..={MAX_MIX_PROGRAMS} components, got {}",
            arr.len()
        )));
    }
    arr.iter()
        .enumerate()
        .map(|(i, c)| parse_mix_component(i, c))
        .collect()
}

fn parse_mix_component(i: usize, json: &Json) -> Result<MixComponent, SimError> {
    let obj = json
        .as_obj()
        .ok_or_else(|| invalid(format!("mix[{i}] must be an object")))?;
    for (key, _) in obj {
        if !["benchmark", "trace", "weight"].contains(&key.as_str()) {
            return Err(invalid(format!(
                "unknown field {key:?} in mix[{i}] (accepted fields: benchmark, trace, weight)"
            )));
        }
    }
    let source = match (json.get("benchmark"), json.get("trace")) {
        (Some(b), None) => {
            let name = b
                .as_str()
                .ok_or_else(|| invalid(format!("mix[{i}].benchmark must be a string")))?;
            if BenchmarkProfile::by_name(name).is_none() {
                let known: Vec<&str> = spec2010_suite().iter().map(|b| b.name()).collect();
                return Err(invalid(format!(
                    "unknown benchmark {name:?} in mix[{i}] (suite: {})",
                    known.join(", ")
                )));
            }
            MixSource::Benchmark(name.to_owned())
        }
        (None, Some(t)) => {
            let name = t
                .as_str()
                .ok_or_else(|| invalid(format!("mix[{i}].trace must be a string")))?;
            validate_trace_name(i, name)?;
            MixSource::Trace(name.to_owned())
        }
        _ => {
            return Err(invalid(format!(
                "mix[{i}] must name exactly one of \"benchmark\" or \"trace\""
            )))
        }
    };
    let weight = match json.get("weight") {
        None => 1.0,
        Some(v) => v
            .as_f64()
            .filter(|w| w.is_finite() && *w > 0.0)
            .ok_or_else(|| invalid(format!("mix[{i}].weight must be a positive number")))?,
    };
    Ok(MixComponent { source, weight })
}

/// A mix trace reference is a *name*, not a path: the executor joins it
/// to the configured trace directory, so anything that could climb out
/// of it (separators, a leading dot) is rejected at the door.
fn validate_trace_name(i: usize, name: &str) -> Result<(), SimError> {
    let ok = !name.is_empty()
        && name.len() <= MAX_TRACE_NAME_LEN
        && !name.starts_with('.')
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || b == b'-');
    if ok {
        Ok(())
    } else {
        Err(invalid(format!(
            "mix[{i}].trace must be a plain file name (ASCII letters, digits, '.', '_', '-'; \
             no leading '.'; at most {MAX_TRACE_NAME_LEN} chars), got {name:?}"
        )))
    }
}

fn field_u64(obj: &Json, key: &str) -> Result<Option<u64>, SimError> {
    match obj.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| invalid(format!("field {key:?} must be a non-negative integer"))),
    }
}

impl RunRequest {
    /// Field names the decoder accepts: the canonical experiment fields
    /// (including the fidelity tier and its sampling knobs) plus the
    /// operational `deadline_ms` (accepted and validated, but excluded
    /// from the canonical form — see [`deadline_ms`](Self::deadline_ms)).
    pub const FIELDS: [&'static str; 14] = [
        "benchmark",
        "mix",
        "mix_seed",
        "scheme",
        "sets",
        "ways",
        "line_bytes",
        "accesses",
        "warmup_fraction",
        "profile",
        "fidelity",
        "sample_rate",
        "sample_seed",
        "deadline_ms",
    ];

    /// Default sampling rate when a `sampled` request omits it (matches
    /// [`stem_bench::config::Config::sample_rate`]).
    pub const DEFAULT_SAMPLE_RATE: u32 = 16;

    /// Default sampling seed when a `sampled` request omits it (matches
    /// [`stem_bench::config::Config::sample_seed`]).
    pub const DEFAULT_SAMPLE_SEED: u64 = 0;

    /// Decodes and validates a request body.
    ///
    /// # Errors
    ///
    /// [`SimError::Json`] when the body is not valid JSON;
    /// [`SimError::Config`] when it is JSON but not a valid request
    /// (wrong shape, unknown field, unknown benchmark or scheme, invalid
    /// geometry or bounds).
    pub fn parse(body: &[u8]) -> Result<RunRequest, SimError> {
        let text = std::str::from_utf8(body).map_err(|_| invalid("request body is not UTF-8"))?;
        let json = Json::parse(text)?;
        RunRequest::from_json(&json)
    }

    /// Decodes an already-parsed JSON value.
    ///
    /// # Errors
    ///
    /// [`SimError::Config`] on any validation failure (see
    /// [`parse`](Self::parse)).
    pub fn from_json(json: &Json) -> Result<RunRequest, SimError> {
        let obj = json
            .as_obj()
            .ok_or_else(|| invalid("request body must be a JSON object"))?;
        for (key, _) in obj {
            if !Self::FIELDS.contains(&key.as_str()) {
                return Err(invalid(format!(
                    "unknown field {key:?} (accepted fields: {})",
                    Self::FIELDS.join(", ")
                )));
            }
        }

        let mix = json.get("mix").map(parse_mix).transpose()?;
        let benchmark = match (&mix, json.get("benchmark")) {
            (Some(_), Some(_)) => {
                return Err(invalid(
                    "fields \"benchmark\" and \"mix\" are mutually exclusive \
                     (a mix names its workloads inside \"mix\")",
                ))
            }
            (Some(_), None) => String::new(),
            (None, maybe) => {
                let benchmark = maybe
                    .ok_or_else(|| invalid("missing required field \"benchmark\" (or \"mix\")"))?
                    .as_str()
                    .ok_or_else(|| invalid("field \"benchmark\" must be a string"))?
                    .to_owned();
                if BenchmarkProfile::by_name(&benchmark).is_none() {
                    let known: Vec<&str> = spec2010_suite().iter().map(|b| b.name()).collect();
                    return Err(invalid(format!(
                        "unknown benchmark {benchmark:?} (suite: {})",
                        known.join(", ")
                    )));
                }
                benchmark
            }
        };

        let mix_seed = field_u64(json, "mix_seed")?;
        if mix.is_none() && mix_seed.is_some() {
            return Err(invalid("field \"mix_seed\" requires \"mix\""));
        }
        let mix_seed = match mix_seed {
            None => 0,
            Some(s) => {
                if s > i64::MAX as u64 {
                    return Err(invalid(format!(
                        "field \"mix_seed\" must fit in a signed 64-bit JSON integer, got {s}"
                    )));
                }
                s
            }
        };

        let scheme_name = json
            .get("scheme")
            .ok_or_else(|| invalid("missing required field \"scheme\""))?
            .as_str()
            .ok_or_else(|| invalid("field \"scheme\" must be a string"))?;
        let scheme: Scheme = scheme_name.parse().map_err(|_| {
            let known: Vec<&str> = Scheme::PAPER.iter().map(|s| s.label()).collect();
            invalid(format!(
                "unknown scheme {scheme_name:?} (schemes: {})",
                known.join(", ")
            ))
        })?;

        let sets = field_u64(json, "sets")?.unwrap_or(2048) as usize;
        let ways = field_u64(json, "ways")?.unwrap_or(16) as usize;
        let line_bytes = field_u64(json, "line_bytes")?.unwrap_or(64);
        // Geometry validation is delegated to the simulator's own rules
        // (power-of-two sets/lines, nonzero ways) so the service cannot
        // accept a geometry the backend would reject.
        CacheGeometry::new(sets, ways, line_bytes)?;

        let accesses = field_u64(json, "accesses")?.unwrap_or(DEFAULT_ACCESSES as u64) as usize;
        if accesses == 0 || accesses > MAX_ACCESSES {
            return Err(invalid(format!(
                "field \"accesses\" must be in 1..={MAX_ACCESSES}, got {accesses}"
            )));
        }

        let warmup_fraction = match json.get("warmup_fraction") {
            None => DEFAULT_WARMUP,
            Some(v) => v
                .as_f64()
                .filter(|w| (0.0..=0.9).contains(w))
                .ok_or_else(|| {
                    invalid("field \"warmup_fraction\" must be a number in 0.0..=0.9")
                })?,
        };

        let profile = match json.get("profile") {
            None => false,
            Some(v) => v
                .as_bool()
                .ok_or_else(|| invalid("field \"profile\" must be a boolean"))?,
        };

        let fidelity = match json.get("fidelity") {
            None => Fidelity::Exact,
            Some(v) => v
                .as_str()
                .and_then(|s| s.parse::<Fidelity>().ok())
                .ok_or_else(|| invalid("field \"fidelity\" must be \"exact\" or \"sampled\""))?,
        };
        if mix.is_some() {
            if profile {
                return Err(invalid(
                    "field \"profile\" requires a single-benchmark request \
                     (the capacity profile ranks one program's sets)",
                ));
            }
            if fidelity == Fidelity::Sampled {
                return Err(invalid(
                    "\"fidelity\": \"sampled\" requires a single-benchmark request \
                     (a mix replays the full shared hierarchy, which set sampling cannot cover)",
                ));
            }
        }
        let sample_rate = field_u64(json, "sample_rate")?;
        let sample_seed = field_u64(json, "sample_seed")?;
        if fidelity == Fidelity::Exact && (sample_rate.is_some() || sample_seed.is_some()) {
            return Err(invalid(
                "fields \"sample_rate\"/\"sample_seed\" require \"fidelity\": \"sampled\"",
            ));
        }
        if fidelity == Fidelity::Sampled {
            // Sampling replays the bare LLC over a strided subset of
            // sets; the §3.1 profile ranks *every* set's demand, so the
            // two are incompatible by construction.
            if profile {
                return Err(invalid(
                    "field \"profile\" requires \"fidelity\": \"exact\" \
                     (the capacity profile ranks every set; a sampled replay drops most of them)",
                ));
            }
            let geom = CacheGeometry::new(sets, ways, line_bytes)?;
            if !scheme_supports_set_sampling(scheme, geom) {
                let eligible: Vec<&str> = Scheme::ALL
                    .iter()
                    .filter(|&&s| scheme_supports_set_sampling(s, geom))
                    .map(|s| s.label())
                    .collect();
                return Err(invalid(format!(
                    "scheme {:?} holds cross-set state and does not support sampled \
                     fidelity (eligible schemes: {})",
                    scheme.label(),
                    eligible.join(", ")
                )));
            }
        }
        let sample_rate = match sample_rate {
            None => Self::DEFAULT_SAMPLE_RATE,
            Some(r) => {
                if r == 0 || r > MAX_SAMPLE_RATE {
                    return Err(invalid(format!(
                        "field \"sample_rate\" must be in 1..={MAX_SAMPLE_RATE}, got {r}"
                    )));
                }
                r as u32
            }
        };
        let sample_seed = match sample_seed {
            None => Self::DEFAULT_SAMPLE_SEED,
            Some(s) => {
                if s > i64::MAX as u64 {
                    return Err(invalid(format!(
                        "field \"sample_seed\" must fit in a signed 64-bit JSON integer, got {s}"
                    )));
                }
                s
            }
        };

        let deadline_ms = field_u64(json, "deadline_ms")?;
        if let Some(d) = deadline_ms {
            if d == 0 || d > MAX_DEADLINE_MS {
                return Err(invalid(format!(
                    "field \"deadline_ms\" must be in 1..={MAX_DEADLINE_MS}, got {d}"
                )));
            }
        }

        Ok(RunRequest {
            benchmark,
            mix,
            mix_seed,
            scheme,
            sets,
            ways,
            line_bytes,
            accesses,
            warmup_fraction,
            profile,
            fidelity,
            sample_rate,
            sample_seed,
            deadline_ms,
        })
    }

    /// The validated geometry.
    ///
    /// # Panics
    ///
    /// Never for a request produced by [`parse`](Self::parse), which
    /// validated the geometry already.
    pub fn geometry(&self) -> CacheGeometry {
        CacheGeometry::new(self.sets, self.ways, self.line_bytes)
            .expect("request geometry was validated at parse time")
    }

    /// The canonical JSON form of a mix array: each component as its
    /// source key plus an always-explicit rounded weight, in wire order.
    /// Defaults filled in, so an omitted weight and an explicit 1.0 share
    /// one serialization.
    fn mix_canonical(mix: &[MixComponent]) -> Json {
        Json::Arr(
            mix.iter()
                .map(|c| {
                    let (key, name) = match &c.source {
                        MixSource::Benchmark(n) => ("benchmark", n),
                        MixSource::Trace(n) => ("trace", n),
                    };
                    Json::Obj(vec![
                        (key.to_owned(), Json::str(name.clone())),
                        ("weight".to_owned(), Json::float_rounded(c.weight, 6)),
                    ])
                })
                .collect(),
        )
    }

    /// The canonical JSON form: the experiment fields in a fixed order,
    /// defaults explicit. Hashing and response echoes both use this.
    /// `fidelity` is always present, and the sampling knobs appear
    /// exactly when it is `sampled` — a sampled request and its exact
    /// twin can therefore never share a canonical form, a key, or a
    /// cached body. A mix request leads with `mix` + `mix_seed` instead
    /// of `benchmark`, so the two request families can never alias
    /// either. `deadline_ms` is intentionally absent — see
    /// [`deadline_ms`](Self::deadline_ms).
    pub fn canonical(&self) -> Json {
        let source_fields: Vec<(String, Json)> = match &self.mix {
            Some(mix) => vec![
                ("mix".into(), Self::mix_canonical(mix)),
                ("mix_seed".into(), Json::Int(self.mix_seed as i64)),
            ],
            None => vec![("benchmark".into(), Json::str(self.benchmark.clone()))],
        };
        let mut fields = source_fields;
        fields.extend([
            ("scheme".into(), Json::str(self.scheme.label())),
            ("sets".into(), Json::Int(self.sets as i64)),
            ("ways".into(), Json::Int(self.ways as i64)),
            ("line_bytes".into(), Json::Int(self.line_bytes as i64)),
            ("accesses".into(), Json::Int(self.accesses as i64)),
            (
                "warmup_fraction".into(),
                Json::float_rounded(self.warmup_fraction, 6),
            ),
            ("profile".into(), Json::Bool(self.profile)),
            ("fidelity".into(), Json::str(self.fidelity.to_string())),
        ]);
        if self.fidelity == Fidelity::Sampled {
            fields.push(("sample_rate".into(), Json::Int(i64::from(self.sample_rate))));
            fields.push(("sample_seed".into(), Json::Int(self.sample_seed as i64)));
        }
        Json::Obj(fields)
    }

    /// The cache key: FNV-1a 64 over the canonical serialization.
    pub fn cache_key(&self) -> u64 {
        fnv1a64(self.canonical().to_string().as_bytes())
    }

    /// The canonical **warm-prefix** form: exactly the fields the warmed
    /// simulator state depends on — benchmark, scheme, geometry, trace
    /// length, and warm-up fraction. `profile`, `fidelity`, the sampling
    /// knobs, and `deadline_ms` are deliberately absent: they change what
    /// is *measured or reported* after the warm boundary, never the state
    /// the warm prefix leaves behind, so requests differing only in those
    /// fields share one snapshot entry. A distinct fixed `"warm_prefix"`
    /// marker field keeps this serialization from ever colliding with a
    /// full [`canonical`](Self::canonical) form byte-for-byte.
    ///
    /// Mix requests never consult the snapshot store (their warm state is
    /// a whole multi-core hierarchy, not one `System`), but their prefix
    /// form still carries the full mix identity so two different mixes
    /// could never alias even if a future executor did.
    pub fn warm_prefix_canonical(&self) -> Json {
        let source_fields: Vec<(String, Json)> = match &self.mix {
            Some(mix) => vec![
                ("mix".into(), Self::mix_canonical(mix)),
                ("mix_seed".into(), Json::Int(self.mix_seed as i64)),
            ],
            None => vec![("benchmark".into(), Json::str(self.benchmark.clone()))],
        };
        let mut fields = vec![("warm_prefix".into(), Json::Bool(true))];
        fields.extend(source_fields);
        fields.extend([
            ("scheme".into(), Json::str(self.scheme.label())),
            ("sets".into(), Json::Int(self.sets as i64)),
            ("ways".into(), Json::Int(self.ways as i64)),
            ("line_bytes".into(), Json::Int(self.line_bytes as i64)),
            ("accesses".into(), Json::Int(self.accesses as i64)),
            (
                "warmup_fraction".into(),
                Json::float_rounded(self.warmup_fraction, 6),
            ),
        ]);
        Json::Obj(fields)
    }

    /// The snapshot-cache key: FNV-1a 64 over the warm-prefix canonical
    /// serialization. As with [`cache_key`](Self::cache_key), the cache
    /// stores the canonical string alongside and compares it on lookup,
    /// so a hash collision degrades to a miss, never to a wrong restore.
    pub fn snapshot_key(&self) -> u64 {
        fnv1a64(self.warm_prefix_canonical().to_string().as_bytes())
    }
}

/// FNV-1a 64-bit: tiny, dependency-free, and stable across platforms —
/// exactly what a content-addressed cache key needs. (Not collision
/// resistant against adversaries; the cache stores the canonical string
/// alongside the hash and compares it on lookup.)
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal() -> &'static str {
        r#"{"benchmark": "omnetpp", "scheme": "stem"}"#
    }

    #[test]
    fn minimal_request_gets_paper_defaults() {
        let req = RunRequest::parse(minimal().as_bytes()).expect("valid");
        assert_eq!(req.benchmark, "omnetpp");
        assert_eq!(req.scheme, Scheme::Stem);
        assert_eq!((req.sets, req.ways, req.line_bytes), (2048, 16, 64));
        assert_eq!(req.accesses, DEFAULT_ACCESSES);
        assert!((req.warmup_fraction - DEFAULT_WARMUP).abs() < 1e-12);
        assert!(!req.profile);
        assert_eq!(req.fidelity, Fidelity::Exact);
        assert_eq!(req.sample_rate, RunRequest::DEFAULT_SAMPLE_RATE);
        assert_eq!(req.sample_seed, RunRequest::DEFAULT_SAMPLE_SEED);
    }

    #[test]
    fn fidelity_always_splits_the_cache_key() {
        // The tentpole invariant: a sampled request and its exact twin
        // must never alias — not in the canonical form (which the cache
        // compares byte-for-byte on lookup, so even an FNV collision
        // degrades to a miss) and not in the key.
        let exact = RunRequest::parse(br#"{"benchmark": "mcf", "scheme": "lru"}"#).expect("valid");
        let sampled =
            RunRequest::parse(br#"{"benchmark": "mcf", "scheme": "lru", "fidelity": "sampled"}"#)
                .expect("valid");
        assert_ne!(exact.cache_key(), sampled.cache_key());
        assert_ne!(
            exact.canonical().to_string(),
            sampled.canonical().to_string()
        );
        assert!(exact.canonical().to_string().contains("\"exact\""));
        assert!(sampled.canonical().to_string().contains("\"sampled\""));

        // Different rates and seeds are different experiments too.
        let rate8 = RunRequest::parse(
            br#"{"benchmark": "mcf", "scheme": "lru", "fidelity": "sampled", "sample_rate": 8}"#,
        )
        .expect("valid");
        let seed7 = RunRequest::parse(
            br#"{"benchmark": "mcf", "scheme": "lru", "fidelity": "sampled", "sample_seed": 7}"#,
        )
        .expect("valid");
        let keys = [
            exact.cache_key(),
            sampled.cache_key(),
            rate8.cache_key(),
            seed7.cache_key(),
        ];
        for (i, a) in keys.iter().enumerate() {
            for b in keys.iter().skip(i + 1) {
                assert_ne!(a, b, "fidelity variants must not share cache keys");
            }
        }
    }

    #[test]
    fn sampled_defaults_are_explicit_in_the_canonical_form() {
        let implicit =
            RunRequest::parse(br#"{"benchmark": "mcf", "scheme": "lru", "fidelity": "sampled"}"#)
                .expect("valid");
        let explicit = RunRequest::parse(
            br#"{"benchmark": "mcf", "scheme": "lru", "fidelity": "sampled",
                 "sample_rate": 16, "sample_seed": 0}"#,
        )
        .expect("valid");
        assert_eq!(implicit.cache_key(), explicit.cache_key());
        assert!(implicit.canonical().to_string().contains("sample_rate"));
        // Exact requests carry the fidelity marker but no sampling knobs.
        let exact = RunRequest::parse(minimal().as_bytes()).expect("valid");
        let canon = exact.canonical().to_string();
        assert!(canon.contains("\"fidelity\""));
        assert!(!canon.contains("sample_rate") && !canon.contains("sample_seed"));
    }

    #[test]
    fn canonicalization_is_field_order_independent() {
        let a = RunRequest::parse(br#"{"scheme": "lru", "benchmark": "mcf", "accesses": 1000}"#)
            .expect("valid");
        let b = RunRequest::parse(br#"{"accesses": 1000, "benchmark": "mcf", "scheme": "lru"}"#)
            .expect("valid");
        assert_eq!(a.canonical().to_string(), b.canonical().to_string());
        assert_eq!(a.cache_key(), b.cache_key());
    }

    #[test]
    fn omitted_defaults_and_explicit_defaults_share_a_key() {
        let implicit = RunRequest::parse(minimal().as_bytes()).expect("valid");
        let explicit = RunRequest::parse(
            br#"{"benchmark": "omnetpp", "scheme": "stem", "sets": 2048, "ways": 16,
                 "line_bytes": 64, "accesses": 200000, "warmup_fraction": 0.2,
                 "profile": false}"#,
        )
        .expect("valid");
        assert_eq!(implicit.cache_key(), explicit.cache_key());
    }

    #[test]
    fn rejections_name_the_problem() {
        let cases: &[(&str, &str)] = &[
            (r#"{"benchmark": "omnetpp"}"#, "scheme"),
            (r#"{"scheme": "lru"}"#, "benchmark"),
            (
                r#"{"benchmark": "nope", "scheme": "lru"}"#,
                "unknown benchmark",
            ),
            (r#"{"benchmark": "mcf", "scheme": "mru"}"#, "unknown scheme"),
            (
                r#"{"benchmark": "mcf", "scheme": "lru", "turbo": true}"#,
                "unknown field",
            ),
            (
                r#"{"benchmark": "mcf", "scheme": "lru", "sets": 1000}"#,
                "power of two",
            ),
            (
                r#"{"benchmark": "mcf", "scheme": "lru", "accesses": 0}"#,
                "accesses",
            ),
            (
                r#"{"benchmark": "mcf", "scheme": "lru", "warmup_fraction": 1.5}"#,
                "warmup_fraction",
            ),
            (
                r#"{"benchmark": "mcf", "scheme": "lru", "deadline_ms": 0}"#,
                "deadline_ms",
            ),
            (
                r#"{"benchmark": "mcf", "scheme": "lru", "deadline_ms": -5}"#,
                "deadline_ms",
            ),
            (
                r#"{"benchmark": "mcf", "scheme": "lru", "deadline_ms": 999999999999}"#,
                "deadline_ms",
            ),
            (
                r#"{"benchmark": "mcf", "scheme": "lru", "fidelity": "fuzzy"}"#,
                "fidelity",
            ),
            (
                r#"{"benchmark": "mcf", "scheme": "lru", "sample_rate": 8}"#,
                "require \"fidelity\": \"sampled\"",
            ),
            (
                r#"{"benchmark": "mcf", "scheme": "lru", "sample_seed": 3}"#,
                "require \"fidelity\": \"sampled\"",
            ),
            (
                r#"{"benchmark": "mcf", "scheme": "lru", "fidelity": "sampled", "sample_rate": 0}"#,
                "sample_rate",
            ),
            (
                r#"{"benchmark": "mcf", "scheme": "lru", "fidelity": "sampled", "profile": true}"#,
                "profile",
            ),
            (
                r#"{"benchmark": "mcf", "scheme": "stem", "fidelity": "sampled"}"#,
                "eligible schemes",
            ),
            (
                r#"{"benchmark": "mcf", "scheme": "vway", "fidelity": "sampled"}"#,
                "cross-set state",
            ),
            (r#"[1, 2]"#, "object"),
        ];
        for (body, needle) in cases {
            let err = RunRequest::parse(body.as_bytes()).expect_err(body);
            let msg = err.to_string();
            assert!(msg.contains(needle), "{body} → {msg} (wanted {needle:?})");
        }
    }

    #[test]
    fn deadline_is_validated_but_never_part_of_the_identity() {
        let patient = RunRequest::parse(minimal().as_bytes()).expect("valid");
        let hurried =
            RunRequest::parse(br#"{"benchmark": "omnetpp", "scheme": "stem", "deadline_ms": 250}"#)
                .expect("valid");
        assert_eq!(hurried.deadline_ms, Some(250));
        assert_eq!(patient.deadline_ms, None);
        assert_eq!(
            patient.canonical().to_string(),
            hurried.canonical().to_string(),
            "deadline must not leak into the canonical echo"
        );
        assert_eq!(
            patient.cache_key(),
            hurried.cache_key(),
            "deadline must not split cache entries"
        );
        assert!(!patient.canonical().to_string().contains("deadline"));
    }

    #[test]
    fn warm_prefix_identity_follows_the_warm_state_not_the_measurement() {
        // Fields that only change what is measured/reported after the
        // warm boundary — profile, fidelity+sampling knobs, deadline —
        // share one warm prefix; every field the warm state depends on
        // splits it.
        let base = RunRequest::parse(br#"{"benchmark": "mcf", "scheme": "lru"}"#).expect("valid");
        let shares: &[&[u8]] = &[
            br#"{"benchmark": "mcf", "scheme": "lru", "profile": true}"#,
            br#"{"benchmark": "mcf", "scheme": "lru", "fidelity": "sampled"}"#,
            br#"{"benchmark": "mcf", "scheme": "lru", "deadline_ms": 250}"#,
        ];
        for body in shares {
            let req = RunRequest::parse(body).expect("valid");
            assert_eq!(base.snapshot_key(), req.snapshot_key(), "{body:?}");
            assert_eq!(
                base.warm_prefix_canonical().to_string(),
                req.warm_prefix_canonical().to_string()
            );
        }
        let splits: &[&[u8]] = &[
            br#"{"benchmark": "omnetpp", "scheme": "lru"}"#,
            br#"{"benchmark": "mcf", "scheme": "dip"}"#,
            br#"{"benchmark": "mcf", "scheme": "lru", "sets": 1024}"#,
            br#"{"benchmark": "mcf", "scheme": "lru", "ways": 8}"#,
            br#"{"benchmark": "mcf", "scheme": "lru", "accesses": 1000}"#,
            br#"{"benchmark": "mcf", "scheme": "lru", "warmup_fraction": 0.1}"#,
        ];
        for body in splits {
            let req = RunRequest::parse(body).expect("valid");
            assert_ne!(
                base.warm_prefix_canonical().to_string(),
                req.warm_prefix_canonical().to_string(),
                "{body:?} must not share the warm prefix"
            );
        }
    }

    #[test]
    fn warm_prefix_serialization_never_aliases_a_result_canonical() {
        // The two key spaces are hashed from serializations that can
        // never be byte-equal (the warm-prefix marker field sees to it),
        // so a snapshot entry can never masquerade as a result entry even
        // if the two caches were ever merged.
        let req = RunRequest::parse(br#"{"benchmark": "mcf", "scheme": "lru"}"#).expect("valid");
        assert_ne!(
            req.canonical().to_string(),
            req.warm_prefix_canonical().to_string()
        );
        assert!(req
            .warm_prefix_canonical()
            .to_string()
            .contains("warm_prefix"));
        assert!(!req.canonical().to_string().contains("warm_prefix"));
    }

    #[test]
    fn mix_requests_parse_with_defaults_and_fold_into_the_cache_key() {
        let req = RunRequest::parse(
            br#"{"mix": [{"benchmark": "omnetpp"}, {"benchmark": "gromacs"}], "scheme": "stem"}"#,
        )
        .expect("valid mix");
        assert!(req.benchmark.is_empty());
        let mix = req.mix.as_ref().expect("mix present");
        assert_eq!(mix.len(), 2);
        assert_eq!(mix[0].source, MixSource::Benchmark("omnetpp".into()));
        assert!((mix[0].weight - 1.0).abs() < 1e-12, "default weight");
        assert_eq!(req.mix_seed, 0);

        // Canonical: mix identity present, explicit weights, no
        // benchmark field; defaults (omitted weight/seed) share the key
        // with their explicit twins.
        let canon = req.canonical().to_string();
        assert!(canon.contains("\"mix\"") && canon.contains("\"mix_seed\""));
        assert!(canon.contains("\"weight\""));
        assert!(!canon.contains("\"benchmark\": \"\""));
        let explicit = RunRequest::parse(
            br#"{"mix": [{"benchmark": "omnetpp", "weight": 1.0},
                          {"benchmark": "gromacs", "weight": 1.0}],
                 "mix_seed": 0, "scheme": "stem"}"#,
        )
        .expect("valid mix");
        assert_eq!(req.cache_key(), explicit.cache_key());

        // Every mix knob splits the key: components, weights, seed — and
        // a mix can never alias a solo request.
        let solo =
            RunRequest::parse(br#"{"benchmark": "omnetpp", "scheme": "stem"}"#).expect("valid");
        let reordered = RunRequest::parse(
            br#"{"mix": [{"benchmark": "gromacs"}, {"benchmark": "omnetpp"}], "scheme": "stem"}"#,
        )
        .expect("valid mix");
        let reweighted = RunRequest::parse(
            br#"{"mix": [{"benchmark": "omnetpp", "weight": 2.0}, {"benchmark": "gromacs"}],
                 "scheme": "stem"}"#,
        )
        .expect("valid mix");
        let reseeded = RunRequest::parse(
            br#"{"mix": [{"benchmark": "omnetpp"}, {"benchmark": "gromacs"}],
                 "mix_seed": 7, "scheme": "stem"}"#,
        )
        .expect("valid mix");
        let traced = RunRequest::parse(
            br#"{"mix": [{"benchmark": "omnetpp"}, {"trace": "gromacs"}], "scheme": "stem"}"#,
        )
        .expect("valid mix");
        let keys = [
            req.cache_key(),
            solo.cache_key(),
            reordered.cache_key(),
            reweighted.cache_key(),
            reseeded.cache_key(),
            traced.cache_key(),
        ];
        for (i, a) in keys.iter().enumerate() {
            for b in keys.iter().skip(i + 1) {
                assert_ne!(a, b, "mix variants must not share cache keys");
            }
        }
        // And the warm-prefix space cannot alias across mixes either.
        assert_ne!(req.snapshot_key(), reordered.snapshot_key());
        assert_ne!(req.snapshot_key(), solo.snapshot_key());
    }

    #[test]
    fn mix_rejections_name_the_problem() {
        let cases: &[(&str, &str)] = &[
            (
                r#"{"benchmark": "mcf", "mix": [{"benchmark": "mcf"}], "scheme": "lru"}"#,
                "mutually exclusive",
            ),
            (r#"{"mix": [], "scheme": "lru"}"#, "1..=8"),
            (
                r#"{"mix": [{"benchmark": "mcf"}, {"benchmark": "mcf"}, {"benchmark": "mcf"},
                           {"benchmark": "mcf"}, {"benchmark": "mcf"}, {"benchmark": "mcf"},
                           {"benchmark": "mcf"}, {"benchmark": "mcf"}, {"benchmark": "mcf"}],
                  "scheme": "lru"}"#,
                "1..=8",
            ),
            (r#"{"mix": "mcf", "scheme": "lru"}"#, "array"),
            (
                r#"{"mix": [42], "scheme": "lru"}"#,
                "mix[0] must be an object",
            ),
            (
                r#"{"mix": [{"benchmark": "mcf", "trace": "t.stemtrc"}], "scheme": "lru"}"#,
                "exactly one",
            ),
            (
                r#"{"mix": [{"weight": 1.0}], "scheme": "lru"}"#,
                "exactly one",
            ),
            (
                r#"{"mix": [{"benchmark": "nope"}], "scheme": "lru"}"#,
                "unknown benchmark",
            ),
            (
                r#"{"mix": [{"benchmark": "mcf", "turbo": 1}], "scheme": "lru"}"#,
                "unknown field",
            ),
            (
                r#"{"mix": [{"benchmark": "mcf", "weight": 0}], "scheme": "lru"}"#,
                "positive",
            ),
            (
                r#"{"mix": [{"benchmark": "mcf", "weight": -1}], "scheme": "lru"}"#,
                "positive",
            ),
            (
                r#"{"mix": [{"trace": "../etc/passwd"}], "scheme": "lru"}"#,
                "plain file name",
            ),
            (
                r#"{"mix": [{"trace": ".hidden"}], "scheme": "lru"}"#,
                "plain file name",
            ),
            (
                r#"{"mix": [{"trace": "a/b.stemtrc"}], "scheme": "lru"}"#,
                "plain file name",
            ),
            (
                r#"{"mix": [{"trace": ""}], "scheme": "lru"}"#,
                "plain file name",
            ),
            (
                r#"{"benchmark": "mcf", "mix_seed": 3, "scheme": "lru"}"#,
                "requires \"mix\"",
            ),
            (
                r#"{"mix": [{"benchmark": "mcf"}], "scheme": "lru", "profile": true}"#,
                "single-benchmark",
            ),
            (
                r#"{"mix": [{"benchmark": "mcf"}], "scheme": "lru", "fidelity": "sampled"}"#,
                "single-benchmark",
            ),
        ];
        for (body, needle) in cases {
            let err = RunRequest::parse(body.as_bytes()).expect_err(body);
            let msg = err.to_string();
            assert!(msg.contains(needle), "{body} → {msg} (wanted {needle:?})");
        }
        // A 65-char trace name trips the length bound.
        let long = format!(
            r#"{{"mix": [{{"trace": "{}"}}], "scheme": "lru"}}"#,
            "a".repeat(MAX_TRACE_NAME_LEN + 1)
        );
        let err = RunRequest::parse(long.as_bytes()).expect_err("too long");
        assert!(err.to_string().contains("plain file name"), "{err}");
    }

    #[test]
    fn invalid_json_maps_to_the_json_error_family() {
        let err = RunRequest::parse(b"{oops").expect_err("bad json");
        assert!(matches!(err, SimError::Json(_)), "{err}");
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
