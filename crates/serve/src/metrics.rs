//! The ops surface: counters, gauges, and a latency histogram rendered in
//! Prometheus text exposition format at `/metrics`.
//!
//! Everything is plain `std::sync::atomic` (plus one `Mutex<BTreeMap>`
//! for the labeled request counter), so recording from handler and
//! executor threads never blocks on anything slower than a CAS. Rendering
//! sorts labels (`BTreeMap` iteration order), so the `/metrics` page is
//! deterministic for a given counter state — handy for the CI smoke test
//! that greps it.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Upper bounds (seconds) of the request-latency histogram buckets; an
/// implicit `+Inf` bucket follows.
pub const LATENCY_BUCKETS: [f64; 7] = [0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10.0];

/// Shared service metrics. One instance per service, behind an `Arc`.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Completed requests keyed by `(route, status)`.
    requests: Mutex<BTreeMap<(String, u16), u64>>,
    /// Cumulative latency bucket counts (`LATENCY_BUCKETS` + `+Inf`).
    latency_buckets: [AtomicU64; LATENCY_BUCKETS.len() + 1],
    /// Sum of observed latencies in microseconds (integer, so the render
    /// is deterministic and lock-free).
    latency_sum_micros: AtomicU64,
    latency_count: AtomicU64,
    /// Jobs currently waiting in the bounded queue.
    queue_depth: AtomicU64,
    /// Simulations actually executed (cache misses that ran).
    sim_executions: AtomicU64,
    /// `/run` responses served from the result cache.
    cache_hits: AtomicU64,
    /// `/run` requests that missed the cache.
    cache_misses: AtomicU64,
    /// Valid `/run` requests asking for the sampled-fidelity tier
    /// (counted at validation time, so cache hits are included).
    sampled_requests: AtomicU64,
    /// Valid `/run` requests carrying a multi-programmed `mix` (counted
    /// at validation time, so cache hits are included).
    mix_requests: AtomicU64,
    /// Executed exact runs whose warm prefix was restored from the
    /// snapshot cache instead of re-replayed.
    snapshot_hits: AtomicU64,
    /// Executed exact runs that replayed their warm prefix cold (no
    /// snapshot cached yet, or the scheme declines the capability).
    snapshot_misses: AtomicU64,
    /// Warmed snapshots evicted from the bounded snapshot cache.
    snapshot_evictions: AtomicU64,
    /// Requests rejected with 429 because the queue was full.
    rejected: AtomicU64,
    /// Experiment cells that panicked or overran their budget.
    worker_failures: AtomicU64,
    /// Connection handlers that panicked (caught; connection dropped).
    panics: AtomicU64,
    /// Connections cut because a read/write overran the I/O deadline.
    io_deadline_hits: AtomicU64,
    /// `/run` requests shed with 503 because their deadline budget
    /// expired (in the handler wait or the executor watchdog).
    deadline_shed: AtomicU64,
    /// Chaotic connections accepted, keyed by injected fault profile.
    chaos_faults: Mutex<BTreeMap<&'static str, u64>>,
}

impl Metrics {
    /// Creates zeroed metrics.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Records one completed request.
    pub fn record_request(&self, route: &str, status: u16, latency: Duration) {
        *self
            .requests
            .lock()
            .expect("metrics lock")
            .entry((route.to_owned(), status))
            .or_insert(0) += 1;
        let secs = latency.as_secs_f64();
        let bucket = LATENCY_BUCKETS
            .iter()
            .position(|&le| secs <= le)
            .unwrap_or(LATENCY_BUCKETS.len());
        self.latency_buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.latency_sum_micros
            .fetch_add(latency.as_micros() as u64, Ordering::Relaxed);
        self.latency_count.fetch_add(1, Ordering::Relaxed);
    }

    /// A job entered the bounded queue.
    pub fn job_enqueued(&self) {
        self.queue_depth.fetch_add(1, Ordering::Relaxed);
    }

    /// The executor picked a job up.
    pub fn job_started(&self) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
    }

    /// Jobs currently waiting in the bounded queue (the `Retry-After`
    /// headers on 429/503 are derived from this gauge).
    pub fn queue_depth(&self) -> u64 {
        self.queue_depth.load(Ordering::Relaxed)
    }

    /// A simulation actually ran (as opposed to a cache hit).
    pub fn sim_executed(&self) {
        self.sim_executions.fetch_add(1, Ordering::Relaxed);
    }

    /// Lifetime simulations executed.
    pub fn sim_executions(&self) -> u64 {
        self.sim_executions.load(Ordering::Relaxed)
    }

    /// A `/run` response came straight from the result cache.
    pub fn cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Lifetime cache hits.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// A `/run` request missed the cache.
    pub fn cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// A valid `/run` asked for the sampled-fidelity tier.
    pub fn sampled_request(&self) {
        self.sampled_requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Lifetime sampled-fidelity `/run` requests.
    pub fn sampled_requests(&self) -> u64 {
        self.sampled_requests.load(Ordering::Relaxed)
    }

    /// A valid `/run` carried a multi-programmed mix.
    pub fn mix_request(&self) {
        self.mix_requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Lifetime mix `/run` requests.
    pub fn mix_requests(&self) -> u64 {
        self.mix_requests.load(Ordering::Relaxed)
    }

    /// An executed exact run restored its warm prefix from the snapshot
    /// cache.
    pub fn snapshot_hit(&self) {
        self.snapshot_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Lifetime snapshot-cache hits.
    pub fn snapshot_hits(&self) -> u64 {
        self.snapshot_hits.load(Ordering::Relaxed)
    }

    /// An executed exact run replayed its warm prefix cold.
    pub fn snapshot_miss(&self) {
        self.snapshot_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Lifetime snapshot-cache misses.
    pub fn snapshot_misses(&self) -> u64 {
        self.snapshot_misses.load(Ordering::Relaxed)
    }

    /// A warmed snapshot was evicted from the bounded snapshot cache.
    pub fn snapshot_evicted(&self) {
        self.snapshot_evictions.fetch_add(1, Ordering::Relaxed);
    }

    /// Lifetime snapshot-cache evictions.
    pub fn snapshot_evictions(&self) -> u64 {
        self.snapshot_evictions.load(Ordering::Relaxed)
    }

    /// A request bounced off the full queue with 429.
    pub fn rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Lifetime 429 rejections.
    pub fn rejections(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// An experiment cell panicked or timed out under the runner.
    pub fn worker_failed(&self) {
        self.worker_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// A connection handler panicked (the panic was caught and the
    /// connection dropped; the service lives on).
    pub fn panicked(&self) {
        self.panics.fetch_add(1, Ordering::Relaxed);
    }

    /// Lifetime caught handler panics. The chaos campaign's headline
    /// invariant is that this stays zero.
    pub fn panics(&self) -> u64 {
        self.panics.load(Ordering::Relaxed)
    }

    /// A connection was cut by the per-connection I/O deadline.
    pub fn io_deadline_hit(&self) {
        self.io_deadline_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Lifetime I/O-deadline cuts.
    pub fn io_deadline_hits(&self) -> u64 {
        self.io_deadline_hits.load(Ordering::Relaxed)
    }

    /// A `/run` was answered 503 because its deadline budget ran out.
    pub fn deadline_shed(&self) {
        self.deadline_shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Lifetime deadline sheds.
    pub fn deadline_sheds(&self) -> u64 {
        self.deadline_shed.load(Ordering::Relaxed)
    }

    /// A chaotic connection was accepted with the given fault profile
    /// label (see [`crate::chaos::FaultProfile::label`]).
    pub fn chaos_connection(&self, profile: &'static str) {
        *self
            .chaos_faults
            .lock()
            .expect("metrics lock")
            .entry(profile)
            .or_insert(0) += 1;
    }

    /// Lifetime chaotic connections across all fault profiles.
    pub fn chaos_connections(&self) -> u64 {
        self.chaos_faults
            .lock()
            .expect("metrics lock")
            .values()
            .sum()
    }

    /// Renders the Prometheus text exposition page.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(2048);

        out.push_str("# HELP stem_serve_requests_total Completed requests by route and status.\n");
        out.push_str("# TYPE stem_serve_requests_total counter\n");
        for ((route, status), count) in self.requests.lock().expect("metrics lock").iter() {
            out.push_str(&format!(
                "stem_serve_requests_total{{route=\"{route}\",status=\"{status}\"}} {count}\n"
            ));
        }

        out.push_str(
            "# HELP stem_serve_request_seconds Request latency from accept to response.\n",
        );
        out.push_str("# TYPE stem_serve_request_seconds histogram\n");
        let mut cumulative = 0u64;
        for (i, le) in LATENCY_BUCKETS.iter().enumerate() {
            cumulative += self.latency_buckets[i].load(Ordering::Relaxed);
            out.push_str(&format!(
                "stem_serve_request_seconds_bucket{{le=\"{le}\"}} {cumulative}\n"
            ));
        }
        cumulative += self.latency_buckets[LATENCY_BUCKETS.len()].load(Ordering::Relaxed);
        out.push_str(&format!(
            "stem_serve_request_seconds_bucket{{le=\"+Inf\"}} {cumulative}\n"
        ));
        let sum_secs = self.latency_sum_micros.load(Ordering::Relaxed) as f64 / 1e6;
        out.push_str(&format!("stem_serve_request_seconds_sum {sum_secs}\n"));
        out.push_str(&format!(
            "stem_serve_request_seconds_count {}\n",
            self.latency_count.load(Ordering::Relaxed)
        ));

        let gauges_and_counters: [(&str, &str, &str, u64); 15] = [
            (
                "stem_serve_queue_depth",
                "gauge",
                "Jobs waiting in the bounded queue.",
                self.queue_depth.load(Ordering::Relaxed),
            ),
            (
                "stem_serve_sim_executions_total",
                "counter",
                "Simulations actually executed (cache misses that ran).",
                self.sim_executions(),
            ),
            (
                "stem_serve_cache_hits_total",
                "counter",
                "Run responses served from the result cache.",
                self.cache_hits(),
            ),
            (
                "stem_serve_cache_misses_total",
                "counter",
                "Run requests that missed the result cache.",
                self.cache_misses.load(Ordering::Relaxed),
            ),
            (
                "stem_serve_sampled_requests_total",
                "counter",
                "Valid run requests asking for the sampled-fidelity tier.",
                self.sampled_requests(),
            ),
            (
                "stem_serve_mix_requests_total",
                "counter",
                "Valid run requests carrying a multi-programmed mix.",
                self.mix_requests(),
            ),
            (
                "stem_serve_snapshot_hits_total",
                "counter",
                "Executed exact runs whose warm prefix was restored from the snapshot cache.",
                self.snapshot_hits(),
            ),
            (
                "stem_serve_snapshot_misses_total",
                "counter",
                "Executed exact runs that replayed their warm prefix cold.",
                self.snapshot_misses(),
            ),
            (
                "stem_serve_snapshot_evictions_total",
                "counter",
                "Warmed snapshots evicted from the bounded snapshot cache.",
                self.snapshot_evictions(),
            ),
            (
                "stem_serve_rejected_total",
                "counter",
                "Requests rejected with 429 (queue full).",
                self.rejections(),
            ),
            (
                "stem_serve_worker_failures_total",
                "counter",
                "Experiment cells that panicked or overran their budget.",
                self.worker_failures.load(Ordering::Relaxed),
            ),
            (
                "stem_serve_panics_total",
                "counter",
                "Connection handlers that panicked (caught; must stay 0).",
                self.panics(),
            ),
            (
                "stem_serve_io_deadline_total",
                "counter",
                "Connections cut by the per-connection I/O deadline.",
                self.io_deadline_hits(),
            ),
            (
                "stem_serve_deadline_shed_total",
                "counter",
                "Run requests shed with 503 after their deadline budget expired.",
                self.deadline_sheds(),
            ),
            (
                "stem_serve_chaos_connections_total",
                "counter",
                "Connections accepted with an injected chaos fault profile.",
                self.chaos_connections(),
            ),
        ];
        for (name, kind, help, value) in gauges_and_counters {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} {kind}\n{name} {value}\n"
            ));
        }

        let faults = self.chaos_faults.lock().expect("metrics lock");
        if !faults.is_empty() {
            out.push_str(
                "# HELP stem_serve_chaos_faults_total Injected chaos connections by fault profile.\n",
            );
            out.push_str("# TYPE stem_serve_chaos_faults_total counter\n");
            for (kind, count) in faults.iter() {
                out.push_str(&format!(
                    "stem_serve_chaos_faults_total{{kind=\"{kind}\"}} {count}\n"
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_reflects_recorded_activity() {
        let m = Metrics::new();
        m.record_request("run", 200, Duration::from_millis(3));
        m.record_request("run", 429, Duration::from_micros(50));
        m.record_request("healthz", 200, Duration::from_micros(10));
        m.sim_executed();
        m.cache_hit();
        m.rejected();
        m.sampled_request();
        m.sampled_request();
        m.mix_request();
        m.snapshot_hit();
        m.snapshot_miss();
        m.snapshot_miss();
        m.snapshot_evicted();
        let page = m.render();
        assert!(page.contains("stem_serve_snapshot_hits_total 1"));
        assert!(page.contains("stem_serve_snapshot_misses_total 2"));
        assert!(page.contains("stem_serve_snapshot_evictions_total 1"));
        assert!(page.contains("stem_serve_requests_total{route=\"run\",status=\"200\"} 1"));
        assert!(page.contains("stem_serve_requests_total{route=\"run\",status=\"429\"} 1"));
        assert!(page.contains("stem_serve_sim_executions_total 1"));
        assert!(page.contains("stem_serve_sampled_requests_total 2"));
        assert!(page.contains("stem_serve_mix_requests_total 1"));
        assert!(page.contains("stem_serve_cache_hits_total 1"));
        assert!(page.contains("stem_serve_rejected_total 1"));
        assert!(page.contains("stem_serve_request_seconds_count 3"));
        // 50µs and 10µs land in the first bucket; 3ms in the second.
        assert!(page.contains("stem_serve_request_seconds_bucket{le=\"0.001\"} 2"));
        assert!(page.contains("stem_serve_request_seconds_bucket{le=\"0.005\"} 3"));
        assert!(page.contains("stem_serve_request_seconds_bucket{le=\"+Inf\"} 3"));
    }

    #[test]
    fn chaos_and_hardening_counters_render() {
        let m = Metrics::new();
        m.panicked();
        m.io_deadline_hit();
        m.deadline_shed();
        m.deadline_shed();
        m.chaos_connection("slow_loris");
        m.chaos_connection("slow_loris");
        m.chaos_connection("garbage_prefix");
        let page = m.render();
        assert!(page.contains("stem_serve_panics_total 1"));
        assert!(page.contains("stem_serve_io_deadline_total 1"));
        assert!(page.contains("stem_serve_deadline_shed_total 2"));
        assert!(page.contains("stem_serve_chaos_connections_total 3"));
        assert!(page.contains("stem_serve_chaos_faults_total{kind=\"slow_loris\"} 2"));
        assert!(page.contains("stem_serve_chaos_faults_total{kind=\"garbage_prefix\"} 1"));
        assert_eq!(m.chaos_connections(), 3);
    }

    #[test]
    fn zero_state_still_renders_the_panic_counter() {
        // The chaos smoke stage greps for an explicit zero — the line
        // must exist even when nothing has panicked.
        let page = Metrics::new().render();
        assert!(page.contains("stem_serve_panics_total 0"));
        assert!(page.contains("stem_serve_sampled_requests_total 0"));
        assert!(page.contains("stem_serve_mix_requests_total 0"));
        assert!(page.contains("stem_serve_snapshot_hits_total 0"));
        assert!(page.contains("stem_serve_snapshot_misses_total 0"));
        assert!(page.contains("stem_serve_snapshot_evictions_total 0"));
        assert!(!page.contains("chaos_faults_total{"), "no empty family");
    }

    #[test]
    fn queue_depth_tracks_enqueue_and_start() {
        let m = Metrics::new();
        m.job_enqueued();
        m.job_enqueued();
        m.job_started();
        assert!(m.render().contains("stem_serve_queue_depth 1"));
    }
}
