//! The ops surface: counters, gauges, and a latency histogram rendered in
//! Prometheus text exposition format at `/metrics`.
//!
//! Everything is plain `std::sync::atomic` (plus one `Mutex<BTreeMap>`
//! for the labeled request counter), so recording from handler and
//! executor threads never blocks on anything slower than a CAS. Rendering
//! sorts labels (`BTreeMap` iteration order), so the `/metrics` page is
//! deterministic for a given counter state — handy for the CI smoke test
//! that greps it.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Upper bounds (seconds) of the request-latency histogram buckets; an
/// implicit `+Inf` bucket follows.
pub const LATENCY_BUCKETS: [f64; 7] = [0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10.0];

/// Shared service metrics. One instance per service, behind an `Arc`.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Completed requests keyed by `(route, status)`.
    requests: Mutex<BTreeMap<(String, u16), u64>>,
    /// Cumulative latency bucket counts (`LATENCY_BUCKETS` + `+Inf`).
    latency_buckets: [AtomicU64; LATENCY_BUCKETS.len() + 1],
    /// Sum of observed latencies in microseconds (integer, so the render
    /// is deterministic and lock-free).
    latency_sum_micros: AtomicU64,
    latency_count: AtomicU64,
    /// Jobs currently waiting in the bounded queue.
    queue_depth: AtomicU64,
    /// Simulations actually executed (cache misses that ran).
    sim_executions: AtomicU64,
    /// `/run` responses served from the result cache.
    cache_hits: AtomicU64,
    /// `/run` requests that missed the cache.
    cache_misses: AtomicU64,
    /// Requests rejected with 429 because the queue was full.
    rejected: AtomicU64,
    /// Experiment cells that panicked or overran their budget.
    worker_failures: AtomicU64,
}

impl Metrics {
    /// Creates zeroed metrics.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Records one completed request.
    pub fn record_request(&self, route: &str, status: u16, latency: Duration) {
        *self
            .requests
            .lock()
            .expect("metrics lock")
            .entry((route.to_owned(), status))
            .or_insert(0) += 1;
        let secs = latency.as_secs_f64();
        let bucket = LATENCY_BUCKETS
            .iter()
            .position(|&le| secs <= le)
            .unwrap_or(LATENCY_BUCKETS.len());
        self.latency_buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.latency_sum_micros
            .fetch_add(latency.as_micros() as u64, Ordering::Relaxed);
        self.latency_count.fetch_add(1, Ordering::Relaxed);
    }

    /// A job entered the bounded queue.
    pub fn job_enqueued(&self) {
        self.queue_depth.fetch_add(1, Ordering::Relaxed);
    }

    /// The executor picked a job up.
    pub fn job_started(&self) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
    }

    /// A simulation actually ran (as opposed to a cache hit).
    pub fn sim_executed(&self) {
        self.sim_executions.fetch_add(1, Ordering::Relaxed);
    }

    /// Lifetime simulations executed.
    pub fn sim_executions(&self) -> u64 {
        self.sim_executions.load(Ordering::Relaxed)
    }

    /// A `/run` response came straight from the result cache.
    pub fn cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Lifetime cache hits.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// A `/run` request missed the cache.
    pub fn cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// A request bounced off the full queue with 429.
    pub fn rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Lifetime 429 rejections.
    pub fn rejections(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// An experiment cell panicked or timed out under the runner.
    pub fn worker_failed(&self) {
        self.worker_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// Renders the Prometheus text exposition page.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(2048);

        out.push_str("# HELP stem_serve_requests_total Completed requests by route and status.\n");
        out.push_str("# TYPE stem_serve_requests_total counter\n");
        for ((route, status), count) in self.requests.lock().expect("metrics lock").iter() {
            out.push_str(&format!(
                "stem_serve_requests_total{{route=\"{route}\",status=\"{status}\"}} {count}\n"
            ));
        }

        out.push_str(
            "# HELP stem_serve_request_seconds Request latency from accept to response.\n",
        );
        out.push_str("# TYPE stem_serve_request_seconds histogram\n");
        let mut cumulative = 0u64;
        for (i, le) in LATENCY_BUCKETS.iter().enumerate() {
            cumulative += self.latency_buckets[i].load(Ordering::Relaxed);
            out.push_str(&format!(
                "stem_serve_request_seconds_bucket{{le=\"{le}\"}} {cumulative}\n"
            ));
        }
        cumulative += self.latency_buckets[LATENCY_BUCKETS.len()].load(Ordering::Relaxed);
        out.push_str(&format!(
            "stem_serve_request_seconds_bucket{{le=\"+Inf\"}} {cumulative}\n"
        ));
        let sum_secs = self.latency_sum_micros.load(Ordering::Relaxed) as f64 / 1e6;
        out.push_str(&format!("stem_serve_request_seconds_sum {sum_secs}\n"));
        out.push_str(&format!(
            "stem_serve_request_seconds_count {}\n",
            self.latency_count.load(Ordering::Relaxed)
        ));

        let gauges_and_counters: [(&str, &str, &str, u64); 6] = [
            (
                "stem_serve_queue_depth",
                "gauge",
                "Jobs waiting in the bounded queue.",
                self.queue_depth.load(Ordering::Relaxed),
            ),
            (
                "stem_serve_sim_executions_total",
                "counter",
                "Simulations actually executed (cache misses that ran).",
                self.sim_executions(),
            ),
            (
                "stem_serve_cache_hits_total",
                "counter",
                "Run responses served from the result cache.",
                self.cache_hits(),
            ),
            (
                "stem_serve_cache_misses_total",
                "counter",
                "Run requests that missed the result cache.",
                self.cache_misses.load(Ordering::Relaxed),
            ),
            (
                "stem_serve_rejected_total",
                "counter",
                "Requests rejected with 429 (queue full).",
                self.rejections(),
            ),
            (
                "stem_serve_worker_failures_total",
                "counter",
                "Experiment cells that panicked or overran their budget.",
                self.worker_failures.load(Ordering::Relaxed),
            ),
        ];
        for (name, kind, help, value) in gauges_and_counters {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} {kind}\n{name} {value}\n"
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_reflects_recorded_activity() {
        let m = Metrics::new();
        m.record_request("run", 200, Duration::from_millis(3));
        m.record_request("run", 429, Duration::from_micros(50));
        m.record_request("healthz", 200, Duration::from_micros(10));
        m.sim_executed();
        m.cache_hit();
        m.rejected();
        let page = m.render();
        assert!(page.contains("stem_serve_requests_total{route=\"run\",status=\"200\"} 1"));
        assert!(page.contains("stem_serve_requests_total{route=\"run\",status=\"429\"} 1"));
        assert!(page.contains("stem_serve_sim_executions_total 1"));
        assert!(page.contains("stem_serve_cache_hits_total 1"));
        assert!(page.contains("stem_serve_rejected_total 1"));
        assert!(page.contains("stem_serve_request_seconds_count 3"));
        // 50µs and 10µs land in the first bucket; 3ms in the second.
        assert!(page.contains("stem_serve_request_seconds_bucket{le=\"0.001\"} 2"));
        assert!(page.contains("stem_serve_request_seconds_bucket{le=\"0.005\"} 3"));
        assert!(page.contains("stem_serve_request_seconds_bucket{le=\"+Inf\"} 3"));
    }

    #[test]
    fn queue_depth_tracks_enqueue_and_start() {
        let m = Metrics::new();
        m.job_enqueued();
        m.job_enqueued();
        m.job_started();
        assert!(m.render().contains("stem_serve_queue_depth 1"));
    }
}
