//! The content-addressed result cache.
//!
//! Responses are cached by the FNV-1a 64 hash of the request's canonical
//! serialization ([`crate::request::RunRequest::cache_key`]), with the
//! canonical string stored alongside and compared on lookup so a hash
//! collision degrades to a miss, never to a wrong answer.
//!
//! Eviction is bounded LRU — and rather than writing a fourth LRU
//! implementation, the cache dogfoods the simulator's own
//! [`RecencyStack`]: the cache is one "set" whose ways are cache slots,
//! hits are `touch_mru`, and the victim on overflow is `lru_way()`. The
//! stack's permutation invariant (audited extensively in
//! `stem-replacement`) is exactly the invariant a bounded LRU cache
//! needs.

use std::sync::Arc;

use stem_replacement::RecencyStack;

/// One cached response.
#[derive(Debug)]
struct Entry {
    key: u64,
    canonical: String,
    body: Arc<Vec<u8>>,
}

/// A bounded LRU map from canonical request to response body.
#[derive(Debug)]
pub struct ResultCache {
    slots: Vec<Option<Entry>>,
    recency: RecencyStack,
    hits: u64,
    misses: u64,
}

impl ResultCache {
    /// Default number of cached responses.
    pub const DEFAULT_CAPACITY: usize = 64;

    /// Creates a cache holding up to `capacity` responses.
    ///
    /// # Panics
    ///
    /// Panics unless `capacity` is in `1..=255` ([`RecencyStack`]'s range
    /// — a response cache deeper than 255 entries wants a different
    /// structure anyway).
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            slots: (0..capacity).map(|_| None).collect(),
            recency: RecencyStack::new(capacity),
            hits: 0,
            misses: 0,
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of occupied slots.
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Whether nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(|s| s.is_none())
    }

    /// Lifetime lookup hits.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime lookup misses.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Looks `canonical` up (pre-hashed as `key`); a hit refreshes the
    /// entry to MRU.
    pub fn get(&mut self, key: u64, canonical: &str) -> Option<Arc<Vec<u8>>> {
        let slot = self.slots.iter().position(|s| {
            s.as_ref()
                .is_some_and(|e| e.key == key && e.canonical == canonical)
        });
        match slot {
            Some(way) => {
                self.recency.touch_mru(way);
                self.hits += 1;
                Some(Arc::clone(
                    &self.slots[way].as_ref().expect("matched slot").body,
                ))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts (or refreshes) a response, evicting the LRU entry when
    /// full. Returns the evicted canonical string, if any.
    pub fn insert(&mut self, key: u64, canonical: String, body: Arc<Vec<u8>>) -> Option<String> {
        // Refresh in place if the experiment raced its way in twice.
        if let Some(way) = self.slots.iter().position(|s| {
            s.as_ref()
                .is_some_and(|e| e.key == key && e.canonical == canonical)
        }) {
            self.slots[way] = Some(Entry {
                key,
                canonical,
                body,
            });
            self.recency.touch_mru(way);
            return None;
        }
        let (way, evicted) = match self.slots.iter().position(|s| s.is_none()) {
            Some(empty) => (empty, None),
            // All slots occupied: the recency stack names the victim.
            None => {
                let victim = self.recency.lru_way();
                let old = self.slots[victim]
                    .take()
                    .expect("full cache has no empty slots");
                (victim, Some(old.canonical))
            }
        };
        self.slots[way] = Some(Entry {
            key,
            canonical,
            body,
        });
        self.recency.touch_mru(way);
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::fnv1a64;

    fn put(cache: &mut ResultCache, name: &str) -> Option<String> {
        cache.insert(
            fnv1a64(name.as_bytes()),
            name.to_owned(),
            Arc::new(name.as_bytes().to_vec()),
        )
    }

    fn get(cache: &mut ResultCache, name: &str) -> Option<Arc<Vec<u8>>> {
        cache.get(fnv1a64(name.as_bytes()), name)
    }

    #[test]
    fn hit_returns_the_stored_body() {
        let mut c = ResultCache::new(4);
        assert!(get(&mut c, "a").is_none());
        put(&mut c, "a");
        assert_eq!(get(&mut c, "a").expect("hit").as_slice(), b"a");
        assert_eq!((c.hits(), c.misses()), (1, 1));
    }

    #[test]
    fn eviction_is_least_recently_used() {
        let mut c = ResultCache::new(3);
        put(&mut c, "a");
        put(&mut c, "b");
        put(&mut c, "c");
        // Touch "a" so "b" becomes LRU.
        assert!(get(&mut c, "a").is_some());
        assert_eq!(put(&mut c, "d").as_deref(), Some("b"));
        assert!(get(&mut c, "b").is_none(), "b was evicted");
        assert!(get(&mut c, "a").is_some());
        assert!(get(&mut c, "c").is_some());
        assert!(get(&mut c, "d").is_some());
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn hash_collision_degrades_to_a_miss() {
        let mut c = ResultCache::new(2);
        let key = 42;
        c.insert(key, "left".into(), Arc::new(b"L".to_vec()));
        assert!(
            c.get(key, "right").is_none(),
            "same hash, different request"
        );
        assert_eq!(c.get(key, "left").expect("real hit").as_slice(), b"L");
    }

    #[test]
    fn reinsert_refreshes_instead_of_duplicating() {
        let mut c = ResultCache::new(2);
        put(&mut c, "a");
        put(&mut c, "a");
        assert_eq!(c.len(), 1);
    }
}
