//! The content-addressed caches: response bodies and warm-state
//! snapshots.
//!
//! Both caches share one bounded-LRU core ([`Lru`]) keyed the same way:
//! the FNV-1a 64 hash of a canonical serialization
//! ([`crate::request::RunRequest::cache_key`] for responses,
//! [`crate::request::RunRequest::snapshot_key`] for snapshots), with the
//! canonical string stored alongside and compared on lookup so a hash
//! collision degrades to a miss, never to a wrong answer (or a wrong
//! restore).
//!
//! Eviction is bounded LRU — and rather than writing a fourth LRU
//! implementation, the core dogfoods the simulator's own
//! [`RecencyStack`]: the cache is one "set" whose ways are cache slots,
//! hits are `touch_mru`, and the victim on overflow is `lru_way()`. The
//! stack's permutation invariant (audited extensively in
//! `stem-replacement`) is exactly the invariant a bounded LRU cache
//! needs.

use std::sync::Arc;

use stem_hierarchy::SystemSnapshot;
use stem_replacement::RecencyStack;

/// One cached value.
#[derive(Debug)]
struct Entry<V> {
    key: u64,
    canonical: String,
    value: V,
}

/// The shared bounded-LRU core: a map from canonical string (pre-hashed
/// to `key`) to a cheaply clonable value.
#[derive(Debug)]
struct Lru<V> {
    slots: Vec<Option<Entry<V>>>,
    recency: RecencyStack,
    hits: u64,
    misses: u64,
}

impl<V: Clone> Lru<V> {
    /// # Panics
    ///
    /// Panics unless `capacity` is in `1..=255` ([`RecencyStack`]'s range
    /// — a cache deeper than 255 entries wants a different structure
    /// anyway).
    fn new(capacity: usize) -> Self {
        Lru {
            slots: (0..capacity).map(|_| None).collect(),
            recency: RecencyStack::new(capacity),
            hits: 0,
            misses: 0,
        }
    }

    fn len(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Looks `canonical` up (pre-hashed as `key`); a hit refreshes the
    /// entry to MRU.
    fn get(&mut self, key: u64, canonical: &str) -> Option<V> {
        let slot = self.slots.iter().position(|s| {
            s.as_ref()
                .is_some_and(|e| e.key == key && e.canonical == canonical)
        });
        match slot {
            Some(way) => {
                self.recency.touch_mru(way);
                self.hits += 1;
                Some(
                    self.slots[way]
                        .as_ref()
                        .expect("matched slot")
                        .value
                        .clone(),
                )
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts (or refreshes) a value, evicting the LRU entry when full.
    /// Returns the evicted canonical string, if any.
    fn insert(&mut self, key: u64, canonical: String, value: V) -> Option<String> {
        // Refresh in place if the experiment raced its way in twice.
        if let Some(way) = self.slots.iter().position(|s| {
            s.as_ref()
                .is_some_and(|e| e.key == key && e.canonical == canonical)
        }) {
            self.slots[way] = Some(Entry {
                key,
                canonical,
                value,
            });
            self.recency.touch_mru(way);
            return None;
        }
        let (way, evicted) = match self.slots.iter().position(|s| s.is_none()) {
            Some(empty) => (empty, None),
            // All slots occupied: the recency stack names the victim.
            None => {
                let victim = self.recency.lru_way();
                let old = self.slots[victim]
                    .take()
                    .expect("full cache has no empty slots");
                (victim, Some(old.canonical))
            }
        };
        self.slots[way] = Some(Entry {
            key,
            canonical,
            value,
        });
        self.recency.touch_mru(way);
        evicted
    }
}

/// A bounded LRU map from canonical request to response body.
#[derive(Debug)]
pub struct ResultCache {
    inner: Lru<Arc<Vec<u8>>>,
}

impl ResultCache {
    /// Default number of cached responses.
    pub const DEFAULT_CAPACITY: usize = 64;

    /// Creates a cache holding up to `capacity` responses.
    ///
    /// # Panics
    ///
    /// Panics unless `capacity` is in `1..=255`.
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            inner: Lru::new(capacity),
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.inner.slots.len()
    }

    /// Number of occupied slots.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.inner.len() == 0
    }

    /// Lifetime lookup hits.
    pub fn hits(&self) -> u64 {
        self.inner.hits
    }

    /// Lifetime lookup misses.
    pub fn misses(&self) -> u64 {
        self.inner.misses
    }

    /// Looks `canonical` up (pre-hashed as `key`); a hit refreshes the
    /// entry to MRU.
    pub fn get(&mut self, key: u64, canonical: &str) -> Option<Arc<Vec<u8>>> {
        self.inner.get(key, canonical)
    }

    /// Inserts (or refreshes) a response, evicting the LRU entry when
    /// full. Returns the evicted canonical string, if any.
    pub fn insert(&mut self, key: u64, canonical: String, body: Arc<Vec<u8>>) -> Option<String> {
        self.inner.insert(key, canonical, body)
    }
}

/// A bounded LRU map from canonical **warm prefix** to the warmed
/// [`SystemSnapshot`] it produces, shared across every `/run` whose warm
/// state is identical (see
/// [`RunRequest::warm_prefix_canonical`](crate::request::RunRequest::warm_prefix_canonical)).
///
/// Purely a scheduling structure: a hit skips re-replaying the warm
/// prefix; a miss (or a scheme whose LLC declines the snapshot
/// capability, e.g. STEM) replays it cold. Either way the measured
/// suffix — and therefore the response body — is byte-identical, which
/// is why this cache and the [`ResultCache`] can never alias: they live
/// in different key spaces *and* a snapshot hit still reruns the
/// measured suffix rather than answering from stored bytes.
#[derive(Debug)]
pub struct SnapshotCache {
    inner: Lru<Arc<SystemSnapshot>>,
    evictions: u64,
}

impl SnapshotCache {
    /// Creates a cache holding up to `capacity` warmed snapshots.
    ///
    /// # Panics
    ///
    /// Panics unless `capacity` is in `1..=255`.
    pub fn new(capacity: usize) -> Self {
        SnapshotCache {
            inner: Lru::new(capacity),
            evictions: 0,
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.inner.slots.len()
    }

    /// Number of occupied slots.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.inner.len() == 0
    }

    /// Lifetime lookup hits.
    pub fn hits(&self) -> u64 {
        self.inner.hits
    }

    /// Lifetime lookup misses.
    pub fn misses(&self) -> u64 {
        self.inner.misses
    }

    /// Lifetime LRU evictions.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Looks the warm prefix up (pre-hashed as `key`); a hit refreshes
    /// the entry to MRU.
    pub fn get(&mut self, key: u64, canonical: &str) -> Option<Arc<SystemSnapshot>> {
        self.inner.get(key, canonical)
    }

    /// Inserts (or refreshes) a warmed snapshot, evicting the LRU entry
    /// when full. Returns the evicted canonical string, if any.
    pub fn insert(
        &mut self,
        key: u64,
        canonical: String,
        snapshot: Arc<SystemSnapshot>,
    ) -> Option<String> {
        let evicted = self.inner.insert(key, canonical, snapshot);
        if evicted.is_some() {
            self.evictions += 1;
        }
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::fnv1a64;

    fn put(cache: &mut ResultCache, name: &str) -> Option<String> {
        cache.insert(
            fnv1a64(name.as_bytes()),
            name.to_owned(),
            Arc::new(name.as_bytes().to_vec()),
        )
    }

    fn get(cache: &mut ResultCache, name: &str) -> Option<Arc<Vec<u8>>> {
        cache.get(fnv1a64(name.as_bytes()), name)
    }

    #[test]
    fn hit_returns_the_stored_body() {
        let mut c = ResultCache::new(4);
        assert!(get(&mut c, "a").is_none());
        put(&mut c, "a");
        assert_eq!(get(&mut c, "a").expect("hit").as_slice(), b"a");
        assert_eq!((c.hits(), c.misses()), (1, 1));
    }

    #[test]
    fn eviction_is_least_recently_used() {
        let mut c = ResultCache::new(3);
        put(&mut c, "a");
        put(&mut c, "b");
        put(&mut c, "c");
        // Touch "a" so "b" becomes LRU.
        assert!(get(&mut c, "a").is_some());
        assert_eq!(put(&mut c, "d").as_deref(), Some("b"));
        assert!(get(&mut c, "b").is_none(), "b was evicted");
        assert!(get(&mut c, "a").is_some());
        assert!(get(&mut c, "c").is_some());
        assert!(get(&mut c, "d").is_some());
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn hash_collision_degrades_to_a_miss() {
        let mut c = ResultCache::new(2);
        let key = 42;
        c.insert(key, "left".into(), Arc::new(b"L".to_vec()));
        assert!(
            c.get(key, "right").is_none(),
            "same hash, different request"
        );
        assert_eq!(c.get(key, "left").expect("real hit").as_slice(), b"L");
    }

    #[test]
    fn reinsert_refreshes_instead_of_duplicating() {
        let mut c = ResultCache::new(2);
        put(&mut c, "a");
        put(&mut c, "a");
        assert_eq!(c.len(), 1);
    }

    mod snapshots {
        use super::*;
        use stem_analysis::build_cache;
        use stem_hierarchy::{System, SystemConfig};
        use stem_sim_core::CacheGeometry;

        fn snap() -> Arc<SystemSnapshot> {
            let geom = CacheGeometry::new(64, 4, 64).unwrap();
            let system = System::new(
                SystemConfig::micro2010(),
                build_cache(stem_analysis::Scheme::Lru, geom),
            );
            Arc::new(system.snapshot().expect("LRU supports snapshots"))
        }

        fn put(cache: &mut SnapshotCache, name: &str) -> Option<String> {
            cache.insert(fnv1a64(name.as_bytes()), name.to_owned(), snap())
        }

        #[test]
        fn snapshot_cache_is_lru_and_counts_evictions() {
            let mut c = SnapshotCache::new(2);
            assert!(c.is_empty());
            put(&mut c, "a");
            put(&mut c, "b");
            assert!(c.get(fnv1a64(b"a"), "a").is_some(), "refresh a to MRU");
            assert_eq!(put(&mut c, "c").as_deref(), Some("b"), "b was LRU");
            assert_eq!(c.evictions(), 1);
            assert_eq!((c.hits(), c.misses()), (1, 0));
            assert!(c.get(fnv1a64(b"b"), "b").is_none());
            assert_eq!(c.len(), 2);
            assert_eq!(c.capacity(), 2);
        }

        #[test]
        fn snapshot_collision_degrades_to_a_miss() {
            let mut c = SnapshotCache::new(2);
            c.insert(7, "left".into(), snap());
            assert!(c.get(7, "right").is_none(), "canonical mismatch");
            assert!(c.get(7, "left").is_some());
        }
    }
}
