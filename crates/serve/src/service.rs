//! The service core: routing, the bounded job queue, backpressure, the
//! result cache, deadlines, and graceful shutdown.
//!
//! # Threading model
//!
//! ```text
//! accept thread ── polls Transport::accept, spawns one handler/connection
//!   handler ────── parses HTTP under the per-connection I/O deadline,
//!                  routes; /run checks the cache, then try_sends a job
//!                  (with its request deadline) into the bounded queue
//!                  (full → 429 + Retry-After) and waits on its private
//!                  reply channel until the deadline
//! executor thread  drains the queue; a watchdog sheds jobs whose
//!                  deadline passed in the queue, the rest run through
//!                  ExperimentRunner::run_batch (panic + budget isolated),
//!                  fill the cache, and answer the reply channels
//! ```
//!
//! The queue is a `std::sync::mpsc::sync_channel` of fixed capacity: a
//! `/run` that cannot `try_send` is rejected with **429** immediately —
//! the service never holds more than `queue_capacity` experiments of
//! deferred work, so memory stays bounded no matter how fast clients
//! submit.
//!
//! # Deadlines (the no-hang guarantee)
//!
//! Two budgets bound every connection. The **I/O deadline**
//! ([`ServeConfig::io_deadline`]) caps each read/write loop on the wire,
//! so a slow-loris peer or stalled stream cannot pin a handler: an
//! expired read answers 408 and closes (counted in
//! `stem_serve_io_deadline_total`). The **request deadline**
//! ([`RequestDeadline`], from the client's `deadline_ms` or the service
//! default) travels with the job; the handler stops waiting at it
//! (503 + `Retry-After`, counted in `stem_serve_deadline_shed_total`)
//! and the executor watchdog refuses to start work whose requester
//! already gave up. Every 429/503 carries a deterministic `Retry-After`
//! derived from the current queue depth.
//!
//! # Determinism
//!
//! A `/run` response body is a pure function of the canonical request:
//! the canonical echo plus the executor's deterministic result, rendered
//! by the deterministic JSON writer. Cache hits replay stored bytes.
//! Identical requests therefore return byte-identical bodies at any
//! `STEM_THREADS`, any queue depth, regardless of cache state — and, as
//! the chaos campaign proves, regardless of how hostile the *other*
//! connections are. `deadline_ms` is excluded from the canonical form,
//! so patience never splits a cache entry.
//!
//! # Shutdown
//!
//! `POST /shutdown` (or [`ServiceHandle::shutdown`]) flips the stop flag.
//! The accept thread stops accepting, joins every handler (in-flight
//! requests finish normally), drops the queue sender, and the executor
//! exits once the queue drains — a graceful drain, not an abort.

use std::io::Write;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use stem_bench::resilience::{ExperimentFailure, ExperimentRunner};
use stem_sim_core::Json;

use crate::cache::ResultCache;
use crate::exec::{expired_before_execution, Executor, RequestDeadline};
use crate::http::{read_request_deadline, write_response_deadline, Deadline, HttpRequest};
use crate::metrics::Metrics;
use crate::request::RunRequest;
use crate::transport::{Connection, Transport};

/// Tunables for one service instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bounded queue slots; a `/run` arriving when all are occupied gets
    /// 429.
    pub queue_capacity: usize,
    /// Result-cache entries (LRU beyond this).
    pub cache_capacity: usize,
    /// Warm-state snapshot-cache entries for the production executor
    /// (LRU beyond this; 0 disables warm-prefix reuse entirely). Only
    /// consulted by [`start`] — [`start_with_executor`] callers own their
    /// executor's caching.
    pub snapshot_slots: usize,
    /// Worker threads the executor hands to
    /// [`ExperimentRunner::run_batch`].
    pub threads: usize,
    /// Per-experiment wall-clock budget.
    pub budget: Duration,
    /// Per-connection read/write deadline: the longest one HTTP
    /// read-request or write-response loop may take on the wire.
    pub io_deadline: Duration,
    /// Pre-built metrics to share with decorators (e.g. a
    /// [`ChaosTransport`](crate::chaos::ChaosTransport) counting its
    /// injections); `None` creates fresh metrics.
    pub metrics: Option<Arc<Metrics>>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_capacity: 8,
            cache_capacity: ResultCache::DEFAULT_CAPACITY,
            snapshot_slots: 16,
            threads: stem_bench::pool::configured_threads(),
            budget: Duration::from_secs(600),
            io_deadline: Duration::from_secs(10),
            metrics: None,
        }
    }
}

/// Why a queued job produced no response body.
enum JobError {
    /// The experiment ran and failed (panic, budget, or simulation
    /// error) — the handler answers 500.
    Failed(String),
    /// The executor watchdog shed the job because its deadline passed in
    /// the queue — the handler (if still waiting) answers 503.
    Shed,
}

/// One queued experiment.
struct Job {
    request: RunRequest,
    key: u64,
    canonical: String,
    deadline: RequestDeadline,
    reply: mpsc::Sender<Result<Arc<Vec<u8>>, JobError>>,
}

/// State shared by handlers and the executor.
struct Shared {
    stop: AtomicBool,
    metrics: Arc<Metrics>,
    cache: Mutex<ResultCache>,
    /// `Some` while the service accepts work; taken at drain time so the
    /// executor's `recv` loop terminates.
    queue: Mutex<Option<SyncSender<Job>>>,
    budget: Duration,
    io_deadline: Duration,
}

/// A running service. Dropping the handle does *not* stop it; call
/// [`shutdown`](Self::shutdown) + [`join`](Self::join) (or hit
/// `POST /shutdown`).
pub struct ServiceHandle {
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
    executor_thread: Option<JoinHandle<()>>,
}

impl ServiceHandle {
    /// The live metrics (shared with the running service).
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.shared.metrics)
    }

    /// Requests a graceful drain (idempotent).
    pub fn shutdown(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
    }

    /// Whether a shutdown has been requested (by handle or HTTP).
    pub fn is_stopping(&self) -> bool {
        self.shared.stop.load(Ordering::SeqCst)
    }

    /// Waits for the accept loop, all handlers, and the executor to
    /// finish. Call [`shutdown`](Self::shutdown) first (or rely on
    /// `POST /shutdown`), otherwise this blocks until a client stops the
    /// service.
    pub fn join(mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.executor_thread.take() {
            let _ = t.join();
        }
    }
}

/// Starts the service on `transport` with the production simulation
/// executor, including the warm-state snapshot cache when
/// [`ServeConfig::snapshot_slots`] is nonzero. The executor shares the
/// service's metrics so snapshot traffic shows up on `/metrics`.
pub fn start(transport: Box<dyn Transport>, mut config: ServeConfig) -> ServiceHandle {
    let metrics = config
        .metrics
        .take()
        .unwrap_or_else(|| Arc::new(Metrics::new()));
    config.metrics = Some(Arc::clone(&metrics));
    let executor = crate::exec::simulation_executor_with(config.snapshot_slots, metrics);
    start_with_executor(transport, config, executor)
}

/// Starts the service with an arbitrary executor (tests inject blocking
/// or instant ones to probe backpressure and caching).
pub fn start_with_executor(
    transport: Box<dyn Transport>,
    config: ServeConfig,
    executor: Executor,
) -> ServiceHandle {
    assert!(config.queue_capacity > 0, "queue needs at least one slot");
    let (tx, rx) = mpsc::sync_channel::<Job>(config.queue_capacity);
    let shared = Arc::new(Shared {
        stop: AtomicBool::new(false),
        metrics: config.metrics.unwrap_or_else(|| Arc::new(Metrics::new())),
        cache: Mutex::new(ResultCache::new(config.cache_capacity)),
        queue: Mutex::new(Some(tx)),
        budget: config.budget,
        io_deadline: config.io_deadline,
    });

    let executor_thread = {
        let shared = Arc::clone(&shared);
        let threads = config.threads.max(1);
        let budget = config.budget;
        thread::Builder::new()
            .name("stem-serve-exec".into())
            .spawn(move || executor_loop(&shared, &rx, threads, budget, &executor))
            .expect("spawn executor thread")
    };

    let accept_thread = {
        let shared = Arc::clone(&shared);
        thread::Builder::new()
            .name("stem-serve-accept".into())
            .spawn(move || accept_loop(transport, &shared))
            .expect("spawn accept thread")
    };

    ServiceHandle {
        shared,
        accept_thread: Some(accept_thread),
        executor_thread: Some(executor_thread),
    }
}

/// Polls the transport until the stop flag rises, then drains: joins all
/// handlers and drops the queue sender so the executor can exit.
fn accept_loop(transport: Box<dyn Transport>, shared: &Arc<Shared>) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    while !shared.stop.load(Ordering::SeqCst) {
        match transport.accept() {
            Ok(Some(conn)) => {
                let shared = Arc::clone(shared);
                let handle = thread::Builder::new()
                    .name("stem-serve-conn".into())
                    .spawn(move || {
                        // A handler panic must not take the service down;
                        // the connection just closes without a response.
                        // The no-panic invariant is that this counter
                        // stays zero under any input.
                        if catch_unwind(AssertUnwindSafe(|| handle_connection(conn, &shared)))
                            .is_err()
                        {
                            shared.metrics.panicked();
                        }
                    })
                    .expect("spawn connection handler");
                handlers.push(handle);
                handlers.retain(|h| !h.is_finished());
            }
            Ok(None) => {}
            Err(_) => break, // transport died; drain what is in flight
        }
    }
    for h in handlers {
        let _ = h.join();
    }
    // With every handler done, no sender clones remain outside `queue`;
    // taking it disconnects the channel once queued jobs are consumed.
    shared.queue.lock().expect("queue lock").take();
}

/// Drains the bounded queue. A watchdog sheds jobs whose deadline passed
/// while queued; consecutive live jobs are batched into one
/// [`ExperimentRunner::run_batch`] call (panic- and budget-isolated per
/// cell, results in input order).
fn executor_loop(
    shared: &Arc<Shared>,
    rx: &mpsc::Receiver<Job>,
    threads: usize,
    budget: Duration,
    executor: &Executor,
) {
    let mut runner = ExperimentRunner::with_budget(budget);
    while let Ok(first) = rx.recv() {
        shared.metrics.job_started();
        let mut batch = vec![first];
        while let Ok(job) = rx.try_recv() {
            shared.metrics.job_started();
            batch.push(job);
        }

        // Watchdog: a job that outlived its deadline in the queue is dead
        // on arrival — executing it would wedge live work behind an
        // answer nobody is waiting for. (The waiting handler counts the
        // shed when it answers 503, so this does not double-count.)
        let (live, shed): (Vec<Job>, Vec<Job>) = batch
            .into_iter()
            .partition(|job| !expired_before_execution(&job.deadline));
        for job in shed {
            let _ = job.reply.send(Err(JobError::Shed));
        }
        if live.is_empty() {
            continue;
        }
        let batch = live;

        let cells: Vec<(String, _)> = batch
            .iter()
            .map(|job| {
                let request = job.request.clone();
                let executor = Arc::clone(executor);
                (job.canonical.clone(), move || executor(&request))
            })
            .collect();
        let before = runner.outcomes().len();
        let results = runner.run_batch(threads, cells);
        let outcomes = &runner.outcomes()[before..];

        for ((job, result), outcome) in batch.iter().zip(results).zip(outcomes) {
            let reply = match result {
                Some(Ok(json)) => {
                    shared.metrics.sim_executed();
                    let body = Arc::new(render_run_body(job, &json));
                    shared.cache.lock().expect("cache lock").insert(
                        job.key,
                        job.canonical.clone(),
                        Arc::clone(&body),
                    );
                    Ok(body)
                }
                Some(Err(e)) => {
                    shared.metrics.worker_failed();
                    Err(JobError::Failed(format!("experiment failed: {e}")))
                }
                None => {
                    shared.metrics.worker_failed();
                    let failure = outcome.failure.as_ref().map_or_else(
                        || "unknown failure".to_owned(),
                        ExperimentFailure::to_string,
                    );
                    Err(JobError::Failed(format!("experiment {failure}")))
                }
            };
            // The handler may have timed out and gone; ignore send errors.
            let _ = job.reply.send(reply);
        }
    }
}

/// The complete `/run` response body for a finished experiment: canonical
/// request echo, content hash, and the executor's result.
fn render_run_body(job: &Job, result: &Json) -> Vec<u8> {
    Json::Obj(vec![
        ("request".to_owned(), job.request.canonical()),
        ("key".to_owned(), Json::str(format!("{:016x}", job.key))),
        ("result".to_owned(), result.clone()),
    ])
    .pretty()
    .into_bytes()
}

fn error_body(detail: &str) -> Vec<u8> {
    Json::Obj(vec![("error".to_owned(), Json::str(detail))])
        .pretty()
        .into_bytes()
}

/// The deterministic `Retry-After` value (whole seconds) for shed work:
/// one second of patience per queued job, plus one, capped at a minute.
/// Derived only from the queue-depth gauge, so identical load states
/// advertise identical values.
fn retry_after_secs(shared: &Shared) -> u64 {
    (shared.metrics.queue_depth() + 1).min(60)
}

/// One fully routed response: status, content type, extra headers, body.
struct Routed {
    route: &'static str,
    status: u16,
    content_type: &'static str,
    headers: Vec<(&'static str, String)>,
    body: Vec<u8>,
}

impl Routed {
    fn json(route: &'static str, status: u16, body: Vec<u8>) -> Routed {
        Routed {
            route,
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body,
        }
    }
}

/// Reads one request, routes it, writes one response, closes. Reading
/// and writing each get one I/O deadline; an expired read answers 408
/// (best-effort) and counts toward `stem_serve_io_deadline_total`.
fn handle_connection(mut conn: Box<dyn Connection>, shared: &Arc<Shared>) {
    let t0 = std::time::Instant::now();
    let read_deadline = Deadline::after(shared.io_deadline);
    let request = match read_request_deadline(&mut conn, read_deadline) {
        Ok(r) => r,
        Err(e) => {
            let (route, status) = if e.is_deadline() {
                shared.metrics.io_deadline_hit();
                ("timeout", 408)
            } else {
                ("bad", 400)
            };
            // The write gets its own (fresh) deadline: the read consumed
            // the first one, and an unresponsive peer must not hold the
            // 408/400 write open either.
            let _ = write_response_deadline(
                &mut conn,
                status,
                "application/json",
                &[],
                &error_body(&e.to_string()),
                Deadline::after(shared.io_deadline),
            );
            shared.metrics.record_request(route, status, t0.elapsed());
            return;
        }
    };
    let routed = route(&request, shared);
    if write_response_deadline(
        &mut conn,
        routed.status,
        routed.content_type,
        &routed.headers,
        &routed.body,
        Deadline::after(shared.io_deadline),
    )
    .is_err_and(|e| e.kind() == std::io::ErrorKind::TimedOut)
    {
        shared.metrics.io_deadline_hit();
    }
    let _ = conn.flush();
    shared
        .metrics
        .record_request(routed.route, routed.status, t0.elapsed());
}

/// Dispatches a parsed request to its route.
fn route(req: &HttpRequest, shared: &Arc<Shared>) -> Routed {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => Routed::json(
            "healthz",
            200,
            Json::Obj(vec![("status".to_owned(), Json::str("ok"))])
                .pretty()
                .into_bytes(),
        ),
        ("GET", "/metrics") => Routed {
            route: "metrics",
            status: 200,
            content_type: "text/plain; version=0.0.4",
            headers: Vec::new(),
            body: shared.metrics.render().into_bytes(),
        },
        ("POST", "/run") => handle_run(&req.body, shared),
        ("POST", "/shutdown") => {
            shared.stop.store(true, Ordering::SeqCst);
            Routed::json(
                "shutdown",
                200,
                Json::Obj(vec![("status".to_owned(), Json::str("draining"))])
                    .pretty()
                    .into_bytes(),
            )
        }
        (_, "/healthz" | "/metrics" | "/run" | "/shutdown") => Routed::json(
            "method_not_allowed",
            405,
            error_body(&format!("method {} not allowed here", req.method)),
        ),
        _ => Routed::json(
            "not_found",
            404,
            error_body(&format!("no route {:?}", req.path)),
        ),
    }
}

/// A 429/503 with the deterministic `Retry-After` header attached.
fn shed_response(route: &'static str, status: u16, detail: &str, shared: &Shared) -> Routed {
    let mut r = Routed::json(route, status, error_body(detail));
    r.headers
        .push(("retry-after", retry_after_secs(shared).to_string()));
    r
}

/// The `/run` route: validate → cache → enqueue (or 429) → await result
/// until the request deadline.
fn handle_run(body: &[u8], shared: &Arc<Shared>) -> Routed {
    let request = match RunRequest::parse(body) {
        Ok(r) => r,
        Err(e) => return Routed::json("run", 400, error_body(&e.to_string())),
    };
    if request.fidelity == stem_bench::config::Fidelity::Sampled {
        shared.metrics.sampled_request();
    }
    if request.mix.is_some() {
        shared.metrics.mix_request();
    }
    let canonical = request.canonical().to_string();
    let key = request.cache_key();

    if let Some(hit) = shared
        .cache
        .lock()
        .expect("cache lock")
        .get(key, &canonical)
    {
        shared.metrics.cache_hit();
        return Routed::json("run", 200, hit.as_ref().clone());
    }
    shared.metrics.cache_miss();

    // The default wait covers the executor budget (timeouts included)
    // plus queue slack for everything ahead of this job; a client
    // deadline_ms overrides it with a tighter budget.
    let default_wait = shared
        .budget
        .saturating_mul(2)
        .saturating_add(Duration::from_secs(30));
    let deadline = RequestDeadline::for_request(&request, default_wait);

    let (reply_tx, reply_rx) = mpsc::channel();
    let job = Job {
        request,
        key,
        canonical,
        deadline,
        reply: reply_tx,
    };
    // Clone the sender out of the lock so a slow experiment cannot block
    // other handlers on the mutex.
    let sender = shared.queue.lock().expect("queue lock").clone();
    let Some(sender) = sender else {
        return Routed::json("run", 503, error_body("service is shutting down"));
    };
    match sender.try_send(job) {
        Ok(()) => shared.metrics.job_enqueued(),
        Err(TrySendError::Full(_)) => {
            shared.metrics.rejected();
            return shed_response(
                "run",
                429,
                "experiment queue is full; retry after a running experiment finishes",
                shared,
            );
        }
        Err(TrySendError::Disconnected(_)) => {
            return Routed::json("run", 503, error_body("service is shutting down"));
        }
    }

    match reply_rx.recv_timeout(deadline.remaining()) {
        Ok(Ok(body)) => Routed::json("run", 200, body.as_ref().clone()),
        Ok(Err(JobError::Failed(detail))) => Routed::json("run", 500, error_body(&detail)),
        Ok(Err(JobError::Shed)) | Err(_) => {
            shared.metrics.deadline_shed();
            shed_response(
                "run",
                503,
                "request deadline exceeded before the experiment finished",
                shared,
            )
        }
    }
}
