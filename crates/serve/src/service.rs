//! The service core: routing, the bounded job queue, backpressure, the
//! result cache, and graceful shutdown.
//!
//! # Threading model
//!
//! ```text
//! accept thread ── polls Transport::accept, spawns one handler/connection
//!   handler ────── parses HTTP, routes; /run checks the cache, then
//!                  try_sends a job into the bounded queue (full → 429)
//!                  and blocks on its private reply channel
//! executor thread  drains the queue, runs cells through
//!                  ExperimentRunner::run_batch (panic + budget isolated),
//!                  fills the cache, answers the reply channels
//! ```
//!
//! The queue is a `std::sync::mpsc::sync_channel` of fixed capacity: a
//! `/run` that cannot `try_send` is rejected with **429** immediately —
//! the service never holds more than `queue_capacity` experiments of
//! deferred work, so memory stays bounded no matter how fast clients
//! submit.
//!
//! # Determinism
//!
//! A `/run` response body is a pure function of the canonical request:
//! the canonical echo plus the executor's deterministic result, rendered
//! by the deterministic JSON writer. Cache hits replay stored bytes.
//! Identical requests therefore return byte-identical bodies at any
//! `STEM_THREADS`, any queue depth, and regardless of cache state.
//!
//! # Shutdown
//!
//! `POST /shutdown` (or [`ServiceHandle::shutdown`]) flips the stop flag.
//! The accept thread stops accepting, joins every handler (in-flight
//! requests finish normally), drops the queue sender, and the executor
//! exits once the queue drains — a graceful drain, not an abort.

use std::io::Write;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use stem_bench::resilience::{ExperimentFailure, ExperimentRunner};
use stem_sim_core::Json;

use crate::cache::ResultCache;
use crate::exec::Executor;
use crate::http::{read_request, write_response, HttpRequest};
use crate::metrics::Metrics;
use crate::request::RunRequest;
use crate::transport::{Connection, Transport};

/// Tunables for one service instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bounded queue slots; a `/run` arriving when all are occupied gets
    /// 429.
    pub queue_capacity: usize,
    /// Result-cache entries (LRU beyond this).
    pub cache_capacity: usize,
    /// Worker threads the executor hands to
    /// [`ExperimentRunner::run_batch`].
    pub threads: usize,
    /// Per-experiment wall-clock budget.
    pub budget: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_capacity: 8,
            cache_capacity: ResultCache::DEFAULT_CAPACITY,
            threads: stem_bench::pool::configured_threads(),
            budget: Duration::from_secs(600),
        }
    }
}

/// One queued experiment.
struct Job {
    request: RunRequest,
    key: u64,
    canonical: String,
    reply: mpsc::Sender<Result<Arc<Vec<u8>>, String>>,
}

/// State shared by handlers and the executor.
struct Shared {
    stop: AtomicBool,
    metrics: Arc<Metrics>,
    cache: Mutex<ResultCache>,
    /// `Some` while the service accepts work; taken at drain time so the
    /// executor's `recv` loop terminates.
    queue: Mutex<Option<SyncSender<Job>>>,
    budget: Duration,
}

/// A running service. Dropping the handle does *not* stop it; call
/// [`shutdown`](Self::shutdown) + [`join`](Self::join) (or hit
/// `POST /shutdown`).
pub struct ServiceHandle {
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
    executor_thread: Option<JoinHandle<()>>,
}

impl ServiceHandle {
    /// The live metrics (shared with the running service).
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.shared.metrics)
    }

    /// Requests a graceful drain (idempotent).
    pub fn shutdown(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
    }

    /// Whether a shutdown has been requested (by handle or HTTP).
    pub fn is_stopping(&self) -> bool {
        self.shared.stop.load(Ordering::SeqCst)
    }

    /// Waits for the accept loop, all handlers, and the executor to
    /// finish. Call [`shutdown`](Self::shutdown) first (or rely on
    /// `POST /shutdown`), otherwise this blocks until a client stops the
    /// service.
    pub fn join(mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.executor_thread.take() {
            let _ = t.join();
        }
    }
}

/// Starts the service on `transport` with the production simulation
/// executor.
pub fn start(transport: Box<dyn Transport>, config: ServeConfig) -> ServiceHandle {
    start_with_executor(transport, config, crate::exec::simulation_executor())
}

/// Starts the service with an arbitrary executor (tests inject blocking
/// or instant ones to probe backpressure and caching).
pub fn start_with_executor(
    transport: Box<dyn Transport>,
    config: ServeConfig,
    executor: Executor,
) -> ServiceHandle {
    assert!(config.queue_capacity > 0, "queue needs at least one slot");
    let (tx, rx) = mpsc::sync_channel::<Job>(config.queue_capacity);
    let shared = Arc::new(Shared {
        stop: AtomicBool::new(false),
        metrics: Arc::new(Metrics::new()),
        cache: Mutex::new(ResultCache::new(config.cache_capacity)),
        queue: Mutex::new(Some(tx)),
        budget: config.budget,
    });

    let executor_thread = {
        let shared = Arc::clone(&shared);
        let threads = config.threads.max(1);
        let budget = config.budget;
        thread::Builder::new()
            .name("stem-serve-exec".into())
            .spawn(move || executor_loop(&shared, &rx, threads, budget, &executor))
            .expect("spawn executor thread")
    };

    let accept_thread = {
        let shared = Arc::clone(&shared);
        thread::Builder::new()
            .name("stem-serve-accept".into())
            .spawn(move || accept_loop(transport, &shared))
            .expect("spawn accept thread")
    };

    ServiceHandle {
        shared,
        accept_thread: Some(accept_thread),
        executor_thread: Some(executor_thread),
    }
}

/// Polls the transport until the stop flag rises, then drains: joins all
/// handlers and drops the queue sender so the executor can exit.
fn accept_loop(transport: Box<dyn Transport>, shared: &Arc<Shared>) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    while !shared.stop.load(Ordering::SeqCst) {
        match transport.accept() {
            Ok(Some(conn)) => {
                let shared = Arc::clone(shared);
                let handle = thread::Builder::new()
                    .name("stem-serve-conn".into())
                    .spawn(move || {
                        // A handler panic must not take the service down;
                        // the connection just closes without a response.
                        let _ = catch_unwind(AssertUnwindSafe(|| handle_connection(conn, &shared)));
                    })
                    .expect("spawn connection handler");
                handlers.push(handle);
                handlers.retain(|h| !h.is_finished());
            }
            Ok(None) => {}
            Err(_) => break, // transport died; drain what is in flight
        }
    }
    for h in handlers {
        let _ = h.join();
    }
    // With every handler done, no sender clones remain outside `queue`;
    // taking it disconnects the channel once queued jobs are consumed.
    shared.queue.lock().expect("queue lock").take();
}

/// Drains the bounded queue. Consecutive available jobs are batched into
/// one [`ExperimentRunner::run_batch`] call (panic- and budget-isolated
/// per cell, results in input order).
fn executor_loop(
    shared: &Arc<Shared>,
    rx: &mpsc::Receiver<Job>,
    threads: usize,
    budget: Duration,
    executor: &Executor,
) {
    let mut runner = ExperimentRunner::with_budget(budget);
    while let Ok(first) = rx.recv() {
        shared.metrics.job_started();
        let mut batch = vec![first];
        while let Ok(job) = rx.try_recv() {
            shared.metrics.job_started();
            batch.push(job);
        }

        let cells: Vec<(String, _)> = batch
            .iter()
            .map(|job| {
                let request = job.request.clone();
                let executor = Arc::clone(executor);
                (job.canonical.clone(), move || executor(&request))
            })
            .collect();
        let before = runner.outcomes().len();
        let results = runner.run_batch(threads, cells);
        let outcomes = &runner.outcomes()[before..];

        for ((job, result), outcome) in batch.iter().zip(results).zip(outcomes) {
            let reply = match result {
                Some(Ok(json)) => {
                    shared.metrics.sim_executed();
                    let body = Arc::new(render_run_body(job, &json));
                    shared.cache.lock().expect("cache lock").insert(
                        job.key,
                        job.canonical.clone(),
                        Arc::clone(&body),
                    );
                    Ok(body)
                }
                Some(Err(e)) => {
                    shared.metrics.worker_failed();
                    Err(format!("experiment failed: {e}"))
                }
                None => {
                    shared.metrics.worker_failed();
                    let failure = outcome.failure.as_ref().map_or_else(
                        || "unknown failure".to_owned(),
                        ExperimentFailure::to_string,
                    );
                    Err(format!("experiment {failure}"))
                }
            };
            // The handler may have timed out and gone; ignore send errors.
            let _ = job.reply.send(reply);
        }
    }
}

/// The complete `/run` response body for a finished experiment: canonical
/// request echo, content hash, and the executor's result.
fn render_run_body(job: &Job, result: &Json) -> Vec<u8> {
    Json::Obj(vec![
        ("request".to_owned(), job.request.canonical()),
        ("key".to_owned(), Json::str(format!("{:016x}", job.key))),
        ("result".to_owned(), result.clone()),
    ])
    .pretty()
    .into_bytes()
}

fn error_body(detail: &str) -> Vec<u8> {
    Json::Obj(vec![("error".to_owned(), Json::str(detail))])
        .pretty()
        .into_bytes()
}

/// Reads one request, routes it, writes one response, closes.
fn handle_connection(mut conn: Box<dyn Connection>, shared: &Arc<Shared>) {
    let t0 = Instant::now();
    let request = match read_request(&mut conn) {
        Ok(r) => r,
        Err(e) => {
            let _ = write_response(
                &mut conn,
                400,
                "application/json",
                &error_body(&e.to_string()),
            );
            shared.metrics.record_request("bad", 400, t0.elapsed());
            return;
        }
    };
    let (route, status, content_type, body) = route(&request, shared);
    let _ = write_response(&mut conn, status, content_type, &body);
    let _ = conn.flush();
    shared.metrics.record_request(route, status, t0.elapsed());
}

/// Dispatches a parsed request to its route.
fn route(req: &HttpRequest, shared: &Arc<Shared>) -> (&'static str, u16, &'static str, Vec<u8>) {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => (
            "healthz",
            200,
            "application/json",
            Json::Obj(vec![("status".to_owned(), Json::str("ok"))])
                .pretty()
                .into_bytes(),
        ),
        ("GET", "/metrics") => (
            "metrics",
            200,
            "text/plain; version=0.0.4",
            shared.metrics.render().into_bytes(),
        ),
        ("POST", "/run") => {
            let (status, body) = handle_run(&req.body, shared);
            ("run", status, "application/json", body)
        }
        ("POST", "/shutdown") => {
            shared.stop.store(true, Ordering::SeqCst);
            (
                "shutdown",
                200,
                "application/json",
                Json::Obj(vec![("status".to_owned(), Json::str("draining"))])
                    .pretty()
                    .into_bytes(),
            )
        }
        (_, "/healthz" | "/metrics" | "/run" | "/shutdown") => (
            "method_not_allowed",
            405,
            "application/json",
            error_body(&format!("method {} not allowed here", req.method)),
        ),
        _ => (
            "not_found",
            404,
            "application/json",
            error_body(&format!("no route {:?}", req.path)),
        ),
    }
}

/// The `/run` route: validate → cache → enqueue (or 429) → await result.
fn handle_run(body: &[u8], shared: &Arc<Shared>) -> (u16, Vec<u8>) {
    let request = match RunRequest::parse(body) {
        Ok(r) => r,
        Err(e) => return (400, error_body(&e.to_string())),
    };
    let canonical = request.canonical().to_string();
    let key = request.cache_key();

    if let Some(hit) = shared
        .cache
        .lock()
        .expect("cache lock")
        .get(key, &canonical)
    {
        shared.metrics.cache_hit();
        return (200, hit.as_ref().clone());
    }
    shared.metrics.cache_miss();

    let (reply_tx, reply_rx) = mpsc::channel();
    let job = Job {
        request,
        key,
        canonical,
        reply: reply_tx,
    };
    // Clone the sender out of the lock so a slow experiment cannot block
    // other handlers on the mutex.
    let sender = shared.queue.lock().expect("queue lock").clone();
    let Some(sender) = sender else {
        return (503, error_body("service is shutting down"));
    };
    match sender.try_send(job) {
        Ok(()) => shared.metrics.job_enqueued(),
        Err(TrySendError::Full(_)) => {
            shared.metrics.rejected();
            return (
                429,
                error_body("experiment queue is full; retry after a running experiment finishes"),
            );
        }
        Err(TrySendError::Disconnected(_)) => {
            return (503, error_body("service is shutting down"));
        }
    }

    // The executor answers within its budget (timeouts included); the
    // slack covers queue wait for everything already ahead of this job.
    let wait = shared
        .budget
        .saturating_mul(2)
        .saturating_add(Duration::from_secs(30));
    match reply_rx.recv_timeout(wait) {
        Ok(Ok(body)) => (200, body.as_ref().clone()),
        Ok(Err(detail)) => (500, error_body(&detail)),
        Err(_) => (503, error_body("experiment reply timed out")),
    }
}
