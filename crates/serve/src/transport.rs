//! The transport abstraction: where connections come from.
//!
//! The service core ([`crate::service`]) never touches a socket directly —
//! it pulls connections from a [`Transport`] and speaks HTTP over the
//! returned byte streams. Two implementations exist:
//!
//! * [`TcpTransport`] — a real `std::net::TcpListener`, used by the
//!   `serve` binary;
//! * [`DuplexTransport`] — an in-memory listener whose connections are
//!   `Mutex`/`Condvar` byte pipes, so the whole stack (HTTP parsing,
//!   routing, caching, backpressure) is unit-testable in-process with no
//!   ports, no firewalls, and no flaky ephemeral-bind races.
//!
//! Accept is *polled*: [`Transport::accept`] returns `Ok(None)` when no
//! connection arrived within its short internal wait, so the accept loop
//! can check its stop flag between polls and shut down promptly.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// A bidirectional byte stream carrying one HTTP exchange.
pub trait Connection: Read + Write + Send {}

impl Connection for TcpStream {}

/// Boxed connections are connections too, so decorators like
/// [`ChaosConn`](crate::chaos::ChaosConn) can wrap whatever a transport
/// hands out without knowing the concrete stream type.
impl<C: Connection + ?Sized> Connection for Box<C> {}

/// A source of inbound connections the service accept-loop drains.
pub trait Transport: Send {
    /// Waits briefly for the next inbound connection. `Ok(None)` means
    /// nothing arrived within the poll window (the caller should check
    /// its stop flag and poll again); `Err` means the transport is no
    /// longer usable.
    fn accept(&self) -> io::Result<Option<Box<dyn Connection>>>;

    /// Human-readable endpoint (e.g. `127.0.0.1:8377` or `duplex`).
    fn endpoint(&self) -> String;
}

/// How long one [`Transport::accept`] poll waits before yielding `None`.
const ACCEPT_POLL: Duration = Duration::from_millis(25);

// ---------------------------------------------------------------------------
// TCP
// ---------------------------------------------------------------------------

/// A [`Transport`] over a real TCP listener.
#[derive(Debug)]
pub struct TcpTransport {
    listener: TcpListener,
    addr: SocketAddr,
}

impl TcpTransport {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port).
    pub fn bind(addr: &str) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        Ok(TcpTransport { listener, addr })
    }

    /// The bound socket address (with the real port after an ephemeral
    /// bind).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Transport for TcpTransport {
    fn accept(&self) -> io::Result<Option<Box<dyn Connection>>> {
        match self.listener.accept() {
            Ok((stream, _peer)) => {
                stream.set_nonblocking(false)?;
                // A stalled or half-dead client must not pin a handler
                // thread forever.
                stream.set_read_timeout(Some(Duration::from_secs(10)))?;
                stream.set_write_timeout(Some(Duration::from_secs(10)))?;
                Ok(Some(Box::new(stream)))
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
                Ok(None)
            }
            Err(e) => Err(e),
        }
    }

    fn endpoint(&self) -> String {
        self.addr.to_string()
    }
}

// ---------------------------------------------------------------------------
// In-memory duplex
// ---------------------------------------------------------------------------

/// One direction of a duplex connection: a bounded-ish byte queue with
/// writer/reader shutdown flags.
#[derive(Debug, Default)]
struct PipeState {
    buf: VecDeque<u8>,
    /// Set when the write end is dropped: readers drain what is left and
    /// then see EOF.
    write_closed: bool,
    /// Set when the read end is dropped: writers get `BrokenPipe`.
    read_closed: bool,
}

#[derive(Debug, Default)]
struct Pipe {
    state: Mutex<PipeState>,
    cond: Condvar,
}

impl Pipe {
    fn write(&self, data: &[u8]) -> io::Result<usize> {
        let st = self.state.lock().expect("pipe lock");
        if st.read_closed {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "duplex peer closed its read end",
            ));
        }
        let mut st = st;
        st.buf.extend(data);
        self.cond.notify_all();
        Ok(data.len())
    }

    fn read(&self, out: &mut [u8]) -> io::Result<usize> {
        if out.is_empty() {
            return Ok(0);
        }
        let mut st = self.state.lock().expect("pipe lock");
        loop {
            if !st.buf.is_empty() {
                let n = out.len().min(st.buf.len());
                for slot in out.iter_mut().take(n) {
                    *slot = st.buf.pop_front().expect("buffer has n bytes");
                }
                return Ok(n);
            }
            if st.write_closed {
                return Ok(0); // clean EOF
            }
            let (next, timeout) = self
                .cond
                .wait_timeout(st, Duration::from_secs(10))
                .expect("pipe lock");
            st = next;
            if timeout.timed_out() && st.buf.is_empty() && !st.write_closed {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "duplex read timed out",
                ));
            }
        }
    }

    fn close_write(&self) {
        self.state.lock().expect("pipe lock").write_closed = true;
        self.cond.notify_all();
    }

    fn close_read(&self) {
        self.state.lock().expect("pipe lock").read_closed = true;
        self.cond.notify_all();
    }
}

/// One end of an in-memory duplex connection: reads from one pipe, writes
/// to the other.
#[derive(Debug)]
pub struct DuplexConn {
    rx: Arc<Pipe>,
    tx: Arc<Pipe>,
}

impl Read for DuplexConn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.rx.read(buf)
    }
}

impl Write for DuplexConn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.tx.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Drop for DuplexConn {
    fn drop(&mut self) {
        self.tx.close_write();
        self.rx.close_read();
    }
}

impl Connection for DuplexConn {}

fn duplex_pair() -> (DuplexConn, DuplexConn) {
    let a = Arc::new(Pipe::default());
    let b = Arc::new(Pipe::default());
    (
        DuplexConn {
            rx: Arc::clone(&a),
            tx: Arc::clone(&b),
        },
        DuplexConn { rx: b, tx: a },
    )
}

#[derive(Debug, Default)]
struct DuplexQueue {
    pending: VecDeque<DuplexConn>,
    closed: bool,
}

/// The listener half of the in-memory transport.
#[derive(Debug)]
pub struct DuplexTransport {
    queue: Arc<(Mutex<DuplexQueue>, Condvar)>,
}

/// The client half: hands out fresh connections to the paired
/// [`DuplexTransport`]. Cloneable so tests can connect from many threads.
#[derive(Debug, Clone)]
pub struct DuplexConnector {
    queue: Arc<(Mutex<DuplexQueue>, Condvar)>,
}

/// Creates a paired in-memory listener and connector.
pub fn duplex_transport() -> (DuplexTransport, DuplexConnector) {
    let queue = Arc::new((Mutex::new(DuplexQueue::default()), Condvar::new()));
    (
        DuplexTransport {
            queue: Arc::clone(&queue),
        },
        DuplexConnector { queue },
    )
}

impl DuplexConnector {
    /// Opens a new connection to the paired listener. Fails once the
    /// listener has shut down.
    pub fn connect(&self) -> io::Result<DuplexConn> {
        let (client, server) = duplex_pair();
        let (lock, cond) = &*self.queue;
        let mut q = lock.lock().expect("duplex queue lock");
        if q.closed {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                "duplex listener is shut down",
            ));
        }
        q.pending.push_back(server);
        cond.notify_all();
        Ok(client)
    }
}

impl Transport for DuplexTransport {
    fn accept(&self) -> io::Result<Option<Box<dyn Connection>>> {
        let (lock, cond) = &*self.queue;
        let mut q = lock.lock().expect("duplex queue lock");
        if let Some(conn) = q.pending.pop_front() {
            return Ok(Some(Box::new(conn)));
        }
        let (mut q, _timeout) = cond
            .wait_timeout(q, ACCEPT_POLL)
            .expect("duplex queue lock");
        Ok(q.pending
            .pop_front()
            .map(|c| Box::new(c) as Box<dyn Connection>))
    }

    fn endpoint(&self) -> String {
        "duplex".to_owned()
    }
}

impl Drop for DuplexTransport {
    fn drop(&mut self) {
        let (lock, cond) = &*self.queue;
        lock.lock().expect("duplex queue lock").closed = true;
        cond.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    #[test]
    fn duplex_round_trips_bytes_both_ways() {
        let (listener, connector) = duplex_transport();
        let mut client = connector.connect().expect("connect");
        let mut server = loop {
            if let Some(c) = listener.accept().expect("accept") {
                break c;
            }
        };
        client.write_all(b"ping").expect("client write");
        let mut buf = [0u8; 4];
        server.read_exact(&mut buf).expect("server read");
        assert_eq!(&buf, b"ping");
        server.write_all(b"pong").expect("server write");
        client.read_exact(&mut buf).expect("client read");
        assert_eq!(&buf, b"pong");
    }

    #[test]
    fn dropping_the_writer_yields_clean_eof() {
        let (listener, connector) = duplex_transport();
        let mut client = connector.connect().expect("connect");
        client.write_all(b"last words").expect("write");
        let mut server = listener.accept().expect("accept").expect("pending conn");
        drop(client);
        let mut all = Vec::new();
        server.read_to_end(&mut all).expect("read to EOF");
        assert_eq!(all, b"last words");
    }

    #[test]
    fn connect_after_listener_shutdown_is_refused() {
        let (listener, connector) = duplex_transport();
        drop(listener);
        let err = connector.connect().expect_err("refused");
        assert_eq!(err.kind(), io::ErrorKind::ConnectionRefused);
    }

    #[test]
    fn tcp_transport_binds_ephemeral_and_polls_empty() {
        let t = TcpTransport::bind("127.0.0.1:0").expect("bind");
        assert_ne!(t.local_addr().port(), 0);
        assert!(t.accept().expect("poll").is_none());
    }
}
