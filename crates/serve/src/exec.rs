//! The experiment executor: turns a validated [`RunRequest`] into a
//! deterministic JSON result.
//!
//! The service core is executor-agnostic — it takes any
//! `Fn(&RunRequest) -> Result<Json, SimError>` — so tests can substitute
//! a blocking or instant executor to exercise backpressure and caching
//! without running simulations. [`simulation_executor`] is the real one:
//! decode-once trace preparation ([`prepare_trace`]), the full system
//! model ([`run_system_decoded`] at the paper's Table 1 configuration),
//! and optionally the §3.1 capacity-demand profile.
//!
//! Determinism contract: for a given request the returned JSON — and
//! therefore the serialized response body — is byte-identical across
//! runs, thread counts, and processes. Nothing here reads clocks,
//! randomness beyond the trace generators' fixed seeds, or ambient
//! environment.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use std::path::{Path, PathBuf};

use stem_analysis::{
    build_cache, replay_sample_warmed, run_mix_decoded, run_system_decoded, sampled_mpki,
    warm_split, CapacityDemandProfiler, MixOutcome,
};
use stem_bench::config::Fidelity;
use stem_bench::harness::prepare_trace;
use stem_hierarchy::{System, SystemConfig, SystemMetrics};
use stem_sim_core::{CacheGeometry, DecodedTrace, Json, SampledTrace, ShardedTrace, SimError};
use stem_workloads::{offset_trace_into_region, pro_rata_shares, BenchmarkProfile};

use crate::cache::SnapshotCache;
use crate::metrics::Metrics;
use crate::request::{MixSource, RunRequest, MAX_ACCESSES};

/// The pluggable experiment function.
pub type Executor = Arc<dyn Fn(&RunRequest) -> Result<Json, SimError> + Send + Sync>;

/// The wall-clock budget attached to one `/run` request as it travels
/// handler → queue → executor.
///
/// Built once in the handler from the request's `deadline_ms` (or the
/// service default) and carried with the job, so both ends of the queue
/// agree on the same instant: the handler stops waiting at it, and the
/// executor watchdog ([`expired_before_execution`]) refuses to *start*
/// work whose requester has already given up — the overrun becomes a
/// clean 503 + `Retry-After` instead of a queue wedged behind doomed
/// work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestDeadline {
    at: Instant,
}

impl RequestDeadline {
    /// Derives the deadline for `req`: its own `deadline_ms` when
    /// supplied (already validated to `1..=MAX_DEADLINE_MS`), otherwise
    /// `default_wait`.
    pub fn for_request(req: &RunRequest, default_wait: Duration) -> RequestDeadline {
        let budget = req.deadline_ms.map_or(default_wait, Duration::from_millis);
        RequestDeadline {
            at: Instant::now() + budget,
        }
    }

    /// The instant after which the request counts as overrun.
    pub fn instant(&self) -> Instant {
        self.at
    }

    /// Whether the budget has run out.
    pub fn expired(&self) -> bool {
        Instant::now() >= self.at
    }

    /// Time left before expiry (zero once expired).
    pub fn remaining(&self) -> Duration {
        self.at.saturating_duration_since(Instant::now())
    }
}

/// The executor-side watchdog check: a job is dead on arrival when its
/// deadline passed while it sat in the queue. Executing it anyway would
/// burn a batch slot on an answer nobody is waiting for — the service
/// sheds it instead (counted in `stem_serve_deadline_shed_total`).
pub fn expired_before_execution(deadline: &RequestDeadline) -> bool {
    deadline.expired()
}

/// Builds the production executor (no snapshot cache: every exact run
/// replays its warm prefix cold).
pub fn simulation_executor() -> Executor {
    Arc::new(run_simulation)
}

/// Builds the production executor with a bounded warm-state
/// [`SnapshotCache`] of `snapshot_slots` entries (0 disables it,
/// reducing to [`simulation_executor`]). Exact runs whose warm prefix is
/// cached restore the warmed hierarchy instead of re-replaying it; hits,
/// misses, and evictions land in `metrics`
/// (`stem_serve_snapshot_*_total`).
///
/// Purely a scheduling cache: the measured suffix always reruns, so the
/// response body is byte-identical with the cache on, off, hot, or cold
/// (the warm-state snapshot exactness contract, proven differentially in
/// `stem-hierarchy` and in this crate's service tests).
///
/// # Panics
///
/// Panics if `snapshot_slots` exceeds 255 ([`SnapshotCache::new`]'s
/// bound; the daemon validates the knob before calling this).
pub fn simulation_executor_with(snapshot_slots: usize, metrics: Arc<Metrics>) -> Executor {
    if snapshot_slots == 0 {
        return simulation_executor();
    }
    let store = Arc::new(Mutex::new(SnapshotCache::new(snapshot_slots)));
    Arc::new(move |req| run_simulation_snapshotting(req, &store, &metrics))
}

/// [`run_simulation`] with warm-prefix reuse on the exact path. The
/// sampled tier never consults the store (it replays a bare LLC, not the
/// hierarchy the snapshots capture).
fn run_simulation_snapshotting(
    req: &RunRequest,
    store: &Mutex<SnapshotCache>,
    metrics: &Metrics,
) -> Result<Json, SimError> {
    run_simulation_inner(req, Some((store, metrics)))
}

/// The exact-path metrics replay, warm prefix restored from the snapshot
/// store when possible.
///
/// The protocol mirrors the sweep drivers': warm → `reset_stats` →
/// `snapshot` (so cached snapshots carry zeroed counters) → measure; a
/// hit restores and goes straight to measuring. A scheme whose LLC
/// declines the capability (STEM's shadow-tag and SCDM state) simply
/// never yields a snapshot — every such run replays cold and counts a
/// miss, with bit-identical results.
fn exact_metrics_snapshotting(
    req: &RunRequest,
    geom: CacheGeometry,
    trace: &DecodedTrace,
    store: &Mutex<SnapshotCache>,
    metrics: &Metrics,
) -> SystemMetrics {
    let warm_len = warm_split(trace.len(), req.warmup_fraction);
    let key = req.snapshot_key();
    let canonical = req.warm_prefix_canonical().to_string();
    let mut system = System::new(SystemConfig::micro2010(), build_cache(req.scheme, geom));
    let cached = store
        .lock()
        .expect("snapshot cache lock")
        .get(key, &canonical);
    match cached {
        Some(snap) => {
            metrics.snapshot_hit();
            // The canonical comparison in `get` pins benchmark, scheme,
            // geometry, length, and warm-up; the system config is the
            // executor's constant. A failure here is a wiring bug and
            // must fail loudly (the runner's panic isolation turns it
            // into a 500, never silently-wrong bytes).
            system
                .restore(&snap)
                .expect("cached snapshot restores into its own warm prefix");
        }
        None => {
            metrics.snapshot_miss();
            system.warm_decoded(trace, warm_len);
            system.reset_stats();
            if let Some(snap) = system.snapshot() {
                let evicted = store.lock().expect("snapshot cache lock").insert(
                    key,
                    canonical,
                    Arc::new(snap),
                );
                if evicted.is_some() {
                    metrics.snapshot_evicted();
                }
            }
        }
    }
    system.run_decoded_range(trace, warm_len..trace.len())
}

/// Runs one experiment end to end.
///
/// # Errors
///
/// [`SimError::Config`] if the benchmark vanished between validation and
/// execution (cannot happen for requests produced by
/// [`RunRequest::parse`]).
pub fn run_simulation(req: &RunRequest) -> Result<Json, SimError> {
    run_simulation_inner(req, None)
}

fn run_simulation_inner(
    req: &RunRequest,
    snapshots: Option<(&Mutex<SnapshotCache>, &Metrics)>,
) -> Result<Json, SimError> {
    if req.mix.is_some() {
        // Mix requests replay a multi-core shared-LLC hierarchy; the
        // snapshot store (which captures one solo `System`) is never
        // consulted — the run is deterministic and cold every time.
        return run_mix_request(req, req.geometry(), trace_dir().as_deref());
    }
    let bench = BenchmarkProfile::by_name(&req.benchmark).ok_or_else(|| {
        SimError::config("serve", format!("unknown benchmark {:?}", req.benchmark))
    })?;
    let geom = req.geometry();
    let prepared = prepare_trace(&bench, geom, req.accesses);
    if req.fidelity == Fidelity::Sampled {
        return run_sampled(req, geom, &prepared.trace);
    }
    let metrics = match snapshots {
        Some((store, m)) => exact_metrics_snapshotting(req, geom, &prepared.trace, store, m),
        None => run_system_decoded(
            req.scheme,
            geom,
            SystemConfig::micro2010(),
            &prepared.trace,
            req.warmup_fraction,
        ),
    };

    let mut fields = vec![("metrics".to_owned(), metrics_json(&metrics))];
    if req.profile {
        let profiler = CapacityDemandProfiler::micro2010(geom);
        let agg =
            CapacityDemandProfiler::aggregate(&profile_histograms(&profiler, &prepared.trace));
        fields.push((
            "capacity_profile".to_owned(),
            Json::Obj(vec![
                (
                    "banded_fractions".to_owned(),
                    Json::Arr(
                        agg.banded()
                            .iter()
                            .map(|&f| Json::float_rounded(f, 6))
                            .collect(),
                    ),
                ),
                (
                    "fraction_at_most_4_ways".to_owned(),
                    Json::float_rounded(agg.fraction_at_most(4), 6),
                ),
                (
                    "fraction_at_most_16_ways".to_owned(),
                    Json::float_rounded(agg.fraction_at_most(16), 6),
                ),
            ]),
        ));
    }
    Ok(Json::Obj(fields))
}

/// Environment variable naming the directory mix `trace` references
/// resolve against. Unset means trace-file components are refused (the
/// benchmark-analog components need nothing).
pub const TRACE_DIR_ENV: &str = "STEM_SERVE_TRACE_DIR";

fn trace_dir() -> Option<PathBuf> {
    std::env::var_os(TRACE_DIR_ENV).map(PathBuf::from)
}

/// The multi-programmed mix tier: one core per component, benchmark
/// analogs receiving their pro-rata share of `accesses` and trace-file
/// components replaying their ingested file whole, each folded into its
/// private address region, interleaved by the deterministic weighted
/// lottery seeded with `mix_seed`, and replayed through a shared-LLC
/// [`MixSystem`](stem_hierarchy::MixSystem) plus per-core solo baselines
/// (see [`run_mix_decoded`]).
///
/// Determinism: generation, ingestion, scheduling, and replay are all
/// serial pure functions of the canonical request plus the referenced
/// trace bytes, so the response body is byte-identical at any
/// `STEM_THREADS` setting and across cache hits/misses.
fn run_mix_request(
    req: &RunRequest,
    geom: CacheGeometry,
    trace_dir: Option<&Path>,
) -> Result<Json, SimError> {
    let mix = req.mix.as_ref().expect("mix path requires mix components");
    let weights: Vec<f64> = mix.iter().map(|c| c.weight).collect();
    let shares = pro_rata_shares(&weights, req.accesses);
    let mut streams = Vec::with_capacity(mix.len());
    let mut labels = Vec::with_capacity(mix.len());
    for (i, (comp, share)) in mix.iter().zip(&shares).enumerate() {
        let (label, trace) = match &comp.source {
            MixSource::Benchmark(name) => {
                let bench = BenchmarkProfile::by_name(name).ok_or_else(|| {
                    SimError::config("serve", format!("unknown benchmark {name:?}"))
                })?;
                (name.clone(), bench.trace(geom, *share))
            }
            MixSource::Trace(name) => {
                let dir = trace_dir.ok_or_else(|| {
                    SimError::config(
                        "serve",
                        format!(
                            "mix[{i}] references trace file {name:?}, \
                             but {TRACE_DIR_ENV} is not set"
                        ),
                    )
                })?;
                let (_, trace) = stem_trace_io::load_trace(&dir.join(name))
                    .map_err(|e| SimError::config("serve", format!("mix[{i}] {name:?}: {e}")))?;
                if trace.len() > MAX_ACCESSES {
                    return Err(SimError::config(
                        "serve",
                        format!(
                            "mix[{i}] {name:?} holds {} accesses (limit {MAX_ACCESSES})",
                            trace.len()
                        ),
                    ));
                }
                (format!("trace:{name}"), trace)
            }
        };
        streams.push(DecodedTrace::decode(
            &offset_trace_into_region(trace, i),
            geom,
        ));
        labels.push(label);
    }
    let outcome = run_mix_decoded(
        req.scheme,
        geom,
        SystemConfig::micro2010(),
        &streams,
        &weights,
        req.mix_seed,
        req.warmup_fraction,
    );
    Ok(mix_json(&labels, &weights, &outcome))
}

/// Serializes a mix outcome: the headline co-scheduling metrics plus the
/// full per-core solo/shared metric pairs and the combined shared run.
fn mix_json(labels: &[String], weights: &[f64], outcome: &MixOutcome) -> Json {
    let per_core: Vec<Json> = labels
        .iter()
        .enumerate()
        .map(|(i, label)| {
            Json::Obj(vec![
                ("source".to_owned(), Json::str(label.clone())),
                ("weight".to_owned(), Json::float_rounded(weights[i], 6)),
                (
                    "speedup".to_owned(),
                    Json::float_rounded(outcome.speedups[i], 6),
                ),
                ("solo".to_owned(), metrics_json(&outcome.solo[i])),
                ("shared".to_owned(), metrics_json(&outcome.mix.per_core[i])),
            ])
        })
        .collect();
    Json::Obj(vec![(
        "mix_metrics".to_owned(),
        Json::Obj(vec![
            ("cores".to_owned(), Json::Int(labels.len() as i64)),
            (
                "weighted_speedup".to_owned(),
                Json::float_rounded(outcome.weighted_speedup, 6),
            ),
            (
                "fairness".to_owned(),
                Json::float_rounded(outcome.fairness, 6),
            ),
            ("per_core".to_owned(), Json::Arr(per_core)),
            ("combined".to_owned(), metrics_json(&outcome.mix.combined)),
        ]),
    )])
}

/// The sampled-fidelity tier: selects a UMON-style strided set sample
/// (deterministic in `(sample_seed, sets, sample_rate)`), replays it
/// serially through the bare LLC under the standard warm-up protocol,
/// and scales misses, writebacks, and MPKI back up by the sample's
/// `domains / selected` factor.
///
/// The sampled result deliberately carries **LLC estimates only** — no
/// `amat`/`cpi`. Those need the full hierarchy (L1 filtering, the
/// next-line prefetcher), which crosses set boundaries and therefore has
/// no sound sampled story; clients who need them ask for `exact`.
///
/// Determinism: selection and replay are both serial pure functions of
/// the canonical request, so the response body is byte-identical at any
/// `STEM_THREADS`/`STEM_SHARDS` setting and across cache hits/misses.
fn run_sampled(
    req: &RunRequest,
    geom: CacheGeometry,
    source: &DecodedTrace,
) -> Result<Json, SimError> {
    let sample = SampledTrace::select(source, req.sample_rate, req.sample_seed);
    let warm_len = warm_split(source.len(), req.warmup_fraction);
    let stats = replay_sample_warmed(req.scheme, geom, &sample, warm_len);
    let mpki = sampled_mpki(&stats, &sample, source, warm_len);
    let scale = sample.scale_factor();
    Ok(Json::Obj(vec![(
        "sampled_metrics".to_owned(),
        Json::Obj(vec![
            ("mpki".to_owned(), Json::float_rounded(mpki, 6)),
            (
                "estimated_misses".to_owned(),
                Json::float_rounded(stats.misses() as f64 * scale, 3),
            ),
            (
                "estimated_writebacks".to_owned(),
                Json::float_rounded(stats.writebacks() as f64 * scale, 3),
            ),
            ("scale_factor".to_owned(), Json::float_rounded(scale, 6)),
            (
                "sample".to_owned(),
                Json::Obj(vec![
                    ("rate".to_owned(), Json::Int(i64::from(sample.rate()))),
                    ("seed".to_owned(), Json::Int(sample.seed() as i64)),
                    (
                        "domains".to_owned(),
                        Json::Int(sample.domain_count() as i64),
                    ),
                    (
                        "selected_domains".to_owned(),
                        Json::Int(sample.selected_domains().len() as i64),
                    ),
                    (
                        "selected_accesses".to_owned(),
                        Json::Int(sample.len() as i64),
                    ),
                    (
                        "measured".to_owned(),
                        Json::Obj(vec![
                            ("accesses".to_owned(), Json::Int(stats.accesses() as i64)),
                            ("hits".to_owned(), Json::Int(stats.hits() as i64)),
                            ("misses".to_owned(), Json::Int(stats.misses() as i64)),
                            (
                                "writebacks".to_owned(),
                                Json::Int(stats.writebacks() as i64),
                            ),
                        ]),
                    ),
                ]),
            ),
        ]),
    )]))
}

/// Computes the per-period capacity-demand histograms for `trace`,
/// set-sharded across the bench pool when `STEM_SHARDS` asks for more
/// than one shard, serial otherwise. The sharded path recovers the
/// global sampling-period boundaries from each access's original index
/// and merges partial histograms by exact counter addition, so the two
/// paths are **bit-identical** — the response body (and therefore the
/// result cache's purity) cannot depend on the knob. The metrics replay
/// above always stays serial: the full system model's next-line
/// prefetcher crosses set boundaries, so it never opts into sharding.
fn profile_histograms(
    profiler: &CapacityDemandProfiler,
    trace: &DecodedTrace,
) -> Vec<stem_analysis::DemandHistogram> {
    let shards = stem_bench::config::Config::cached().shards();
    if shards <= 1 {
        return profiler.profile_decoded(trace);
    }
    let plan = ShardedTrace::partition(trace, shards);
    let source_len = plan.source_len();
    let jobs: Vec<_> = plan
        .shards()
        .iter()
        .map(|shard| move || profiler.profile_shard(shard, source_len))
        .collect();
    let parts: Vec<_> = stem_bench::pool::run_ordered(stem_bench::pool::configured_threads(), jobs)
        .into_iter()
        .map(|r| r.unwrap_or_else(|payload| std::panic::resume_unwind(payload)))
        .collect();
    CapacityDemandProfiler::merge_shard_profiles(&parts)
}

/// Serializes the system metrics with fixed 6-decimal rounding, so the
/// response body is stable even if float formatting details ever change.
fn metrics_json(m: &SystemMetrics) -> Json {
    Json::Obj(vec![
        ("mpki".to_owned(), Json::float_rounded(m.mpki, 6)),
        ("amat".to_owned(), Json::float_rounded(m.amat, 6)),
        ("cpi".to_owned(), Json::float_rounded(m.cpi, 6)),
        (
            "l1_miss_rate".to_owned(),
            Json::float_rounded(m.l1_miss_rate, 6),
        ),
        ("instructions".to_owned(), Json::Int(m.instructions as i64)),
        ("accesses".to_owned(), Json::Int(m.accesses as i64)),
        (
            "l2".to_owned(),
            Json::Obj(vec![
                ("accesses".to_owned(), Json::Int(m.l2.accesses() as i64)),
                ("hits".to_owned(), Json::Int(m.l2.hits() as i64)),
                ("misses".to_owned(), Json::Int(m.l2.misses() as i64)),
                ("evictions".to_owned(), Json::Int(m.l2.evictions() as i64)),
                ("writebacks".to_owned(), Json::Int(m.l2.writebacks() as i64)),
                ("spills".to_owned(), Json::Int(m.l2.spills() as i64)),
                ("receives".to_owned(), Json::Int(m.l2.receives() as i64)),
            ]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_request(profile: bool) -> RunRequest {
        RunRequest::parse(
            format!(
                r#"{{"benchmark": "mcf", "scheme": "lru", "sets": 64, "ways": 4,
                     "accesses": 5000, "profile": {profile}}}"#
            )
            .as_bytes(),
        )
        .expect("valid request")
    }

    #[test]
    fn request_deadline_prefers_the_client_budget() {
        let mut req = tiny_request(false);
        req.deadline_ms = Some(1);
        let d = RequestDeadline::for_request(&req, Duration::from_secs(3600));
        std::thread::sleep(Duration::from_millis(5));
        assert!(d.expired());
        assert!(expired_before_execution(&d));
        assert_eq!(d.remaining(), Duration::ZERO);

        req.deadline_ms = None;
        let d = RequestDeadline::for_request(&req, Duration::from_secs(3600));
        assert!(!d.expired());
        assert!(d.remaining() > Duration::from_secs(3000));
    }

    #[test]
    fn simulation_result_is_reproducible() {
        let req = tiny_request(false);
        let a = run_simulation(&req).expect("run a");
        let b = run_simulation(&req).expect("run b");
        assert_eq!(a.to_string(), b.to_string());
        let mpki = a
            .get("metrics")
            .and_then(|m| m.get("mpki"))
            .and_then(Json::as_f64)
            .expect("mpki present");
        assert!(mpki.is_finite() && mpki >= 0.0, "mpki = {mpki}");
    }

    #[test]
    fn sampled_run_is_reproducible_and_reports_the_scaling() {
        let req = RunRequest::parse(
            br#"{"benchmark": "mcf", "scheme": "lru", "sets": 64, "ways": 4,
                 "accesses": 5000, "fidelity": "sampled", "sample_rate": 4}"#,
        )
        .expect("valid request");
        let a = run_simulation(&req).expect("run a");
        let b = run_simulation(&req).expect("run b");
        assert_eq!(a.to_string(), b.to_string(), "sampled result must be pure");
        let sm = a.get("sampled_metrics").expect("sampled_metrics present");
        assert!(a.get("metrics").is_none(), "no full-hierarchy metrics");
        let mpki = sm.get("mpki").and_then(Json::as_f64).expect("mpki");
        assert!(mpki.is_finite() && mpki >= 0.0, "mpki = {mpki}");
        let scale = sm
            .get("scale_factor")
            .and_then(Json::as_f64)
            .expect("scale_factor");
        assert!(scale >= 1.0, "scale = {scale}");
        // 64 sets → 32 pair domains; 1-in-4 stride selects exactly 8.
        let selected = sm
            .get("sample")
            .and_then(|s| s.get("selected_domains"))
            .and_then(Json::as_u64)
            .expect("selected_domains");
        assert_eq!(selected, 8);
    }

    #[test]
    fn rate_one_sample_measures_the_whole_trace() {
        // A full-rate sample keeps every domain: the scale factor must be
        // exactly 1 and the measured accesses must cover the whole
        // post-warm-up stream (bit-level agreement with the exact bare-LLC
        // replay is proven in the analysis crate's differentials).
        let req = RunRequest::parse(
            br#"{"benchmark": "mcf", "scheme": "lru", "sets": 64, "ways": 4,
                 "accesses": 5000, "fidelity": "sampled", "sample_rate": 1}"#,
        )
        .expect("valid request");
        let out = run_simulation(&req).expect("run");
        let sm = out.get("sampled_metrics").expect("sampled_metrics");
        assert_eq!(sm.get("scale_factor").and_then(Json::as_f64), Some(1.0));
        let measured = sm
            .get("sample")
            .and_then(|s| s.get("measured"))
            .and_then(|m| m.get("accesses"))
            .and_then(Json::as_u64)
            .expect("measured accesses");
        assert_eq!(measured, 4000, "5000 accesses minus the 20% warm-up");
    }

    #[test]
    fn snapshotting_runs_are_byte_identical_to_cold_and_count_traffic() {
        let metrics = Metrics::new();
        let store = Mutex::new(SnapshotCache::new(4));
        let req = tiny_request(false);
        let cold = run_simulation(&req).expect("cold run");
        let miss = run_simulation_snapshotting(&req, &store, &metrics).expect("miss run");
        let hit = run_simulation_snapshotting(&req, &store, &metrics).expect("hit run");
        assert_eq!(cold.to_string(), miss.to_string());
        assert_eq!(cold.to_string(), hit.to_string());
        assert_eq!((metrics.snapshot_misses(), metrics.snapshot_hits()), (1, 1));
        assert_eq!(store.lock().unwrap().len(), 1);

        // A profile variant shares the warm prefix: snapshot hit, but a
        // different (larger) response body.
        let with_profile = tiny_request(true);
        let out = run_simulation_snapshotting(&with_profile, &store, &metrics).expect("run");
        assert_eq!(metrics.snapshot_hits(), 2);
        assert!(out.get("capacity_profile").is_some());
        assert_eq!(
            out.get("metrics").expect("metrics").to_string(),
            cold.get("metrics").expect("metrics").to_string(),
            "restored metrics replay must match the cold replay exactly"
        );
    }

    #[test]
    fn refusing_scheme_runs_cold_and_never_populates_the_store() {
        let metrics = Metrics::new();
        let store = Mutex::new(SnapshotCache::new(4));
        let req = RunRequest::parse(
            br#"{"benchmark": "mcf", "scheme": "stem", "sets": 64, "ways": 16, "accesses": 5000}"#,
        )
        .expect("valid request");
        let cold = run_simulation(&req).expect("cold run");
        for _ in 0..2 {
            let out = run_simulation_snapshotting(&req, &store, &metrics).expect("run");
            assert_eq!(cold.to_string(), out.to_string());
        }
        assert!(
            store.lock().unwrap().is_empty(),
            "STEM's LLC declines the capability; nothing may be cached"
        );
        assert_eq!((metrics.snapshot_misses(), metrics.snapshot_hits()), (2, 0));
    }

    #[test]
    fn mix_run_is_reproducible_and_reports_per_core_metrics() {
        let req = RunRequest::parse(
            br#"{"mix": [{"benchmark": "omnetpp"}, {"benchmark": "gromacs"}],
                 "scheme": "lru", "sets": 64, "ways": 8, "accesses": 10000}"#,
        )
        .expect("valid request");
        let a = run_simulation(&req).expect("run a");
        let b = run_simulation(&req).expect("run b");
        assert_eq!(a.to_string(), b.to_string(), "mix result must be pure");
        assert!(a.get("metrics").is_none(), "no solo metrics on a mix");
        let mm = a.get("mix_metrics").expect("mix_metrics present");
        assert_eq!(mm.get("cores").and_then(Json::as_u64), Some(2));
        let ws = mm
            .get("weighted_speedup")
            .and_then(Json::as_f64)
            .expect("weighted_speedup");
        assert!(ws > 0.0 && ws <= 2.0 + 1e-6, "ws = {ws}");
        let fairness = mm.get("fairness").and_then(Json::as_f64).expect("fairness");
        assert!(
            fairness > 0.0 && fairness <= 1.0 + 1e-9,
            "fairness = {fairness}"
        );
        let per_core = mm.get("per_core").and_then(Json::as_arr).expect("per_core");
        assert_eq!(per_core.len(), 2);
        for (i, core) in per_core.iter().enumerate() {
            for side in ["solo", "shared"] {
                let mpki = core
                    .get(side)
                    .and_then(|m| m.get("mpki"))
                    .and_then(Json::as_f64)
                    .unwrap_or(-1.0);
                assert!(mpki >= 0.0, "core {i} {side} mpki = {mpki}");
            }
        }
        assert_eq!(
            per_core[0].get("source").and_then(Json::as_str),
            Some("omnetpp")
        );
        assert!(mm
            .get("combined")
            .and_then(|m| m.get("mpki"))
            .and_then(Json::as_f64)
            .is_some());
    }

    #[test]
    fn mix_trace_components_load_from_the_trace_dir() {
        use stem_workloads::BenchmarkProfile;
        let dir = std::env::temp_dir().join(format!("stem_serve_mix_exec_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create trace dir");
        let geom = CacheGeometry::new(64, 8, 64).expect("geometry");
        let trace = BenchmarkProfile::by_name("mcf")
            .expect("suite")
            .trace(geom, 4_000);
        let file = std::fs::File::create(dir.join("mcf4k.stemtrc")).expect("create fixture");
        stem_trace_io::write_binary(std::io::BufWriter::new(file), &trace).expect("write fixture");

        let req = RunRequest::parse(
            br#"{"mix": [{"trace": "mcf4k.stemtrc"}, {"benchmark": "gromacs"}],
                 "scheme": "lru", "sets": 64, "ways": 8, "accesses": 4000}"#,
        )
        .expect("valid request");
        let out = run_mix_request(&req, req.geometry(), Some(&dir)).expect("mix run");
        let mm = out.get("mix_metrics").expect("mix_metrics");
        let per_core = mm.get("per_core").and_then(Json::as_arr).expect("per_core");
        assert_eq!(
            per_core[0].get("source").and_then(Json::as_str),
            Some("trace:mcf4k.stemtrc")
        );
        // The ingested stream replays whole: its shared accesses cover
        // the file minus its schedule share of the warm-up.
        let again = run_mix_request(&req, req.geometry(), Some(&dir)).expect("mix rerun");
        assert_eq!(out.to_string(), again.to_string());

        // No trace dir configured → a clear refusal naming the knob.
        let err = run_mix_request(&req, req.geometry(), None).expect_err("no dir");
        assert!(err.to_string().contains(TRACE_DIR_ENV), "{err}");
        // A missing file names itself.
        let missing = RunRequest::parse(
            br#"{"mix": [{"trace": "nope.stemtrc"}], "scheme": "lru",
                 "sets": 64, "ways": 8, "accesses": 4000}"#,
        )
        .expect("valid request");
        let err = run_mix_request(&missing, missing.geometry(), Some(&dir)).expect_err("missing");
        assert!(err.to_string().contains("nope.stemtrc"), "{err}");

        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn profile_is_included_only_on_request() {
        let without = run_simulation(&tiny_request(false)).expect("run");
        assert!(without.get("capacity_profile").is_none());
        let with = run_simulation(&tiny_request(true)).expect("run");
        let bands = with
            .get("capacity_profile")
            .and_then(|p| p.get("banded_fractions"))
            .and_then(Json::as_arr)
            .expect("profile bands");
        assert!(!bands.is_empty());
    }
}
