//! Facade crate for the STEM LLC reproduction workspace.
//!
//! Re-exports every crate of the workspace under a single dependency so the
//! examples and integration tests can use one import root.

pub use stem_analysis as analysis;
pub use stem_hierarchy as hierarchy;
pub use stem_llc as llc;
pub use stem_replacement as replacement;
pub use stem_sim_core as sim_core;
pub use stem_spatial as spatial;
pub use stem_trace_io as trace_io;
pub use stem_workloads as workloads;
